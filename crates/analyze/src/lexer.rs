//! A deliberately small line-oriented Rust lexer.
//!
//! The rule engine does not need a full parse tree: every lint in this crate
//! is a statement about *lines* — "this line uses an atomic ordering", "this
//! line opens an `unsafe` block", "the adjacent comment carries a
//! justification". What it does need, and what a naive `grep` cannot deliver,
//! is a reliable separation of the three channels a source line interleaves:
//!
//! * **code** — the line with comments removed and string/char literal
//!   *contents* blanked (the quotes stay, so call shapes like `observe("")`
//!   remain visible). Rules match tokens here, so `Ordering::Relaxed` inside
//!   a doc comment or a format string can never trip a lint.
//! * **comment** — the concatenated text of `//` and `/* */` comments that
//!   touch the line. Justification markers (`SAFETY:`, `ordering:`, `cast:`)
//!   are looked up here.
//! * **strings** — the literal contents stripped out of `code`, keyed by the
//!   column of their opening quote. The metric-name sync rule reads these.
//!
//! The lexer also tracks `#[cfg(test)] mod` regions by brace depth so rules
//! can skip test-only code (test modules may spawn threads, hammer orderings,
//! and cast freely without polluting the production audit).

/// One source line, split into the three channels described at module level.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The raw line as it appears in the file (without the trailing newline).
    pub raw: String,
    /// Comment-free code with string/char contents blanked; quotes preserved.
    pub code: String,
    /// Concatenated text of every comment overlapping this line.
    pub comment: String,
    /// String-literal contents removed from `code`: (column of the opening
    /// quote within `code`, contents). Multi-line literals contribute the
    /// portion seen on each line.
    pub strings: Vec<(usize, String)>,
    /// True when the line sits inside a `#[cfg(test)] mod` region.
    pub in_test: bool,
}

/// A lexed source file with a workspace-relative path.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the analysis root, with `/` separators.
    pub rel: String,
    /// Lines in order; line numbers are `index + 1`.
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Lex `text` into per-line records.
    pub fn lex(rel: &str, text: &str) -> SourceFile {
        let mut lines = lex_lines(text);
        mark_test_regions(&mut lines);
        SourceFile { rel: rel.to_string(), lines }
    }

    /// 1-based line numbers paired with records, skipping test regions.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &Line)> {
        self.lines.iter().enumerate().filter(|(_, l)| !l.in_test).map(|(i, l)| (i + 1, l))
    }
}

/// Cross-line lexer mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    /// Inside nested block comments at the given depth.
    Block(u32),
    /// Inside a normal `"` string (possibly continued across lines).
    Str,
    /// Inside a raw string with the given number of `#` marks.
    RawStr(u8),
}

fn lex_lines(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw in text.lines() {
        let (line, next) = lex_one(raw, mode);
        mode = next;
        out.push(line);
    }
    out
}

/// Lex a single line starting in `mode`; return the record and the mode the
/// next line starts in.
fn lex_one(raw: &str, start: Mode) -> (Line, Mode) {
    let b: Vec<char> = raw.chars().collect();
    let n = b.len();
    let mut code = String::new();
    let mut comment = String::new();
    let mut strings: Vec<(usize, String)> = Vec::new();
    let mut cur_string = String::new();
    let mut cur_col = 0usize;
    let mut mode = start;
    // A string continued from the previous line contributes from column 0.
    if matches!(mode, Mode::Str | Mode::RawStr(_)) {
        cur_col = 0;
    }
    let mut i = 0usize;
    while i < n {
        match mode {
            Mode::Block(depth) => {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    mode = if depth == 1 { Mode::Code } else { Mode::Block(depth - 1) };
                    i += 2;
                } else {
                    comment.push(b[i]);
                    i += 1;
                }
            }
            Mode::Str => {
                if b[i] == '\\' && i + 1 < n {
                    cur_string.push(b[i]);
                    cur_string.push(b[i + 1]);
                    i += 2;
                } else if b[i] == '"' {
                    code.push('"');
                    strings.push((cur_col, std::mem::take(&mut cur_string)));
                    mode = Mode::Code;
                    i += 1;
                } else {
                    cur_string.push(b[i]);
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if b[i] == '"' && closes_raw(&b, i, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    strings.push((cur_col, std::mem::take(&mut cur_string)));
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    cur_string.push(b[i]);
                    i += 1;
                }
            }
            Mode::Code => {
                let c = b[i];
                if c == '/' && i + 1 < n && b[i + 1] == '/' {
                    // Line comment (incl. doc comments): rest of line.
                    comment.push_str(&raw[char_byte(raw, i)..]);
                    i = n;
                } else if c == '/' && i + 1 < n && b[i + 1] == '*' {
                    mode = Mode::Block(1);
                    i += 2;
                } else if c == '"' {
                    cur_col = code.chars().count();
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
                    let (hashes, skip) = raw_string_open(&b, i);
                    cur_col = code.chars().count() + skip - 1;
                    for k in 0..skip {
                        code.push(b[i + k]);
                    }
                    mode = Mode::RawStr(hashes);
                    i += skip;
                } else if c == 'b' && i + 1 < n && b[i + 1] == '"' {
                    cur_col = code.chars().count() + 1;
                    code.push('b');
                    code.push('"');
                    mode = Mode::Str;
                    i += 2;
                } else if c == '\'' {
                    // Char literal vs lifetime. `'\x'`-style escapes and
                    // `'c'` are literals; `'a` followed by anything else is
                    // a lifetime and passes through as code.
                    if i + 1 < n && b[i + 1] == '\\' {
                        let mut j = i + 2;
                        while j < n && b[j] != '\'' {
                            j += if b[j] == '\\' { 2 } else { 1 };
                        }
                        code.push('\'');
                        code.push('\'');
                        i = (j + 1).min(n);
                    } else if i + 2 < n && b[i + 2] == '\'' {
                        code.push('\'');
                        code.push('\'');
                        i += 3;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    // A string still open at end-of-line flushes its chunk for this line.
    if matches!(mode, Mode::Str | Mode::RawStr(_)) && !cur_string.is_empty() {
        strings.push((cur_col, std::mem::take(&mut cur_string)));
    }
    (Line { raw: raw.to_string(), code, comment, strings, in_test: false }, mode)
}

/// Does the `"` at `i` close a raw string with `hashes` trailing `#` marks?
fn closes_raw(b: &[char], i: usize, hashes: u8) -> bool {
    let h = hashes as usize;
    if i + h >= b.len() + usize::from(h == 0) && h > 0 {
        return false;
    }
    (1..=h).all(|k| i + k < b.len() && b[i + k] == '#')
}

/// Is `b[i]` the start of a raw (byte) string literal: `r"`, `r#"`, `br"`…?
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    // Reject identifiers ending in r/b, e.g. `for"`-like shapes cannot occur
    // but `var"` could if `var` ended with r; require a non-ident char before.
    if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j >= b.len() || b[j] != 'r' {
            return false;
        }
    }
    if j >= b.len() || b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

/// Length (in chars) and hash count of a raw-string opener at `i`.
fn raw_string_open(b: &[char], i: usize) -> (u8, usize) {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0u8;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // the `"`
    (hashes, j - i)
}

/// Byte offset of the `idx`-th char in `s`.
fn char_byte(s: &str, idx: usize) -> usize {
    s.char_indices().nth(idx).map(|(o, _)| o).unwrap_or(s.len())
}

/// Mark lines inside `#[cfg(test)] mod … { … }` regions.
///
/// Tracks brace depth over the comment/string-free `code` channel. A pending
/// `#[cfg(test)]` attribute arms the detector; the next item that is a `mod`
/// declaration opens a test region lasting until depth returns to the level
/// before its `{`.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_cfg_test = false;
    // Depth values at which an open test region ends (stack for nesting).
    let mut test_ends: Vec<i64> = Vec::new();
    for line in lines.iter_mut() {
        let trimmed = line.code.trim();
        let passthrough =
            trimmed.is_empty() || trimmed.starts_with("#[") || trimmed.starts_with("#![");
        if line.code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        let is_mod_line = is_mod_decl(trimmed);
        if !test_ends.is_empty() {
            line.in_test = true;
        }
        let mut chars = line.code.chars().peekable();
        let mut saw_mod_brace = false;
        while let Some(c) = chars.next() {
            match c {
                '{' => {
                    if pending_cfg_test && is_mod_line && !saw_mod_brace {
                        test_ends.push(depth);
                        pending_cfg_test = false;
                        saw_mod_brace = true;
                        line.in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(&end) = test_ends.last() {
                        if depth == end {
                            test_ends.pop();
                        }
                    }
                }
                _ => {
                    let _ = &mut chars;
                }
            }
        }
        // The attribute armed the detector but the item was not a module
        // (e.g. `#[cfg(test)] fn helper()`): disarm after that item line.
        if pending_cfg_test && !passthrough && !is_mod_line && !line.code.contains("#[cfg(test)]") {
            pending_cfg_test = false;
        }
    }
}

/// Is this trimmed code line a `mod` declaration (`mod x {`, `pub mod x;`…)?
fn is_mod_decl(trimmed: &str) -> bool {
    let t = trimmed.strip_prefix("pub ").unwrap_or(trimmed);
    let t = t.strip_prefix("pub(crate) ").unwrap_or(t);
    t.starts_with("mod ")
}

/// Find `needle` in `hay` as a whole word (not flanked by ident chars).
/// Returns char positions of every match start.
pub fn word_positions(hay: &str, needle: &str) -> Vec<usize> {
    let h: Vec<char> = hay.chars().collect();
    let nd: Vec<char> = needle.chars().collect();
    let mut out = Vec::new();
    if nd.is_empty() || h.len() < nd.len() {
        return out;
    }
    for start in 0..=(h.len() - nd.len()) {
        if h[start..start + nd.len()] != nd[..] {
            continue;
        }
        let before_ok = start == 0 || !is_ident(h[start - 1]);
        let after = start + nd.len();
        let after_ok = after >= h.len() || !is_ident(h[after]);
        if before_ok && after_ok {
            out.push(start);
        }
    }
    out
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_code_comment_string() {
        let f = SourceFile::lex("x.rs", "let a = \"Ordering::Relaxed\"; // ordering: note\n");
        let l = &f.lines[0];
        assert!(!l.code.contains("Relaxed"));
        assert!(l.comment.contains("ordering: note"));
        assert_eq!(l.strings.len(), 1);
        assert_eq!(l.strings[0].1, "Ordering::Relaxed");
    }

    #[test]
    fn block_comments_and_nesting() {
        let f = SourceFile::lex("x.rs", "a /* c1 /* c2 */ still */ b\nplain\n");
        assert_eq!(f.lines[0].code.replace(' ', ""), "ab");
        assert!(f.lines[0].comment.contains("c1"));
        assert_eq!(f.lines[1].code, "plain");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = SourceFile::lex("x.rs", "fn f<'a>(x: &'a str) { let c = '\"'; let d = 'y'; }\n");
        let l = &f.lines[0];
        assert!(l.code.contains("<'a>"));
        // Char-literal contents are blanked, so the quote char cannot open a
        // string.
        assert!(l.strings.is_empty());
    }

    #[test]
    fn raw_strings() {
        let f = SourceFile::lex("x.rs", "let s = r#\"he \"quoted\" re\"#;\n");
        assert_eq!(f.lines[0].strings.len(), 1);
        assert_eq!(f.lines[0].strings[0].1, "he \"quoted\" re");
    }

    #[test]
    fn test_region_marking() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::lex("x.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn word_boundaries() {
        assert_eq!(word_positions("xas as asx as", "as"), vec![4, 11]);
    }
}
