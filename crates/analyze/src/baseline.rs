//! The checked-in allowlist.
//!
//! A baseline entry grants a *counted* exemption for a finding, keyed by
//! `(rule, file, trimmed source line)` rather than by line number, so pure
//! line motion (an unrelated edit above the site) does not invalidate it.
//! Every entry must carry a human justification; entries whose key no longer
//! matches anything (or matches fewer sites than `count`) are *stale* and
//! fail the run — the baseline only ever shrinks.
//!
//! File format (`analyze.baseline`, tab-separated, one entry per line):
//!
//! ```text
//! # comment lines and blank lines are ignored
//! rule<TAB>file<TAB>count<TAB>trimmed source line<TAB>justification
//! ```
//!
//! Source lines never contain tabs (rustfmt uses spaces), so the snippet
//! field is unambiguous.

use crate::report::Finding;
use std::collections::HashMap;

/// One parsed baseline entry.
#[derive(Debug, Clone)]
pub struct Entry {
    pub rule: String,
    pub file: String,
    pub count: usize,
    pub snippet: String,
    pub justification: String,
    /// 1-based line in the baseline file (for stale diagnostics).
    pub line: usize,
}

impl Entry {
    fn key(&self) -> (String, String, String) {
        (self.rule.clone(), self.file.clone(), self.snippet.clone())
    }
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Parse baseline text. Errors (malformed lines, zero counts, missing
    /// justifications, duplicate keys) are configuration mistakes and abort
    /// the run rather than silently weakening the gate.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        let mut seen: HashMap<(String, String, String), usize> = HashMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim_end();
            if line.is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 5 {
                return Err(format!(
                    "baseline line {lineno}: expected 5 tab-separated fields \
                     (rule, file, count, snippet, justification), got {}",
                    fields.len()
                ));
            }
            let count: usize = fields[2].parse().map_err(|_| {
                format!("baseline line {lineno}: count {:?} is not a number", fields[2])
            })?;
            if count == 0 {
                return Err(format!("baseline line {lineno}: count must be >= 1"));
            }
            let justification = fields[4].trim();
            if justification.is_empty() {
                return Err(format!("baseline line {lineno}: justification must not be empty"));
            }
            let entry = Entry {
                rule: fields[0].to_string(),
                file: fields[1].to_string(),
                count,
                snippet: fields[3].trim().to_string(),
                justification: justification.to_string(),
                line: lineno,
            };
            if seen.insert(entry.key(), lineno).is_some() {
                return Err(format!(
                    "baseline line {lineno}: duplicate entry for ({}, {}, {:?}) — merge the counts",
                    entry.rule, entry.file, entry.snippet
                ));
            }
            entries.push(entry);
        }
        Ok(Baseline { entries })
    }

    /// Split `findings` into (unbaselined, suppressed count, stale entries).
    ///
    /// Each entry suppresses up to `count` matching findings. An entry that
    /// matches fewer findings than its count is stale: the code improved and
    /// the baseline must shrink to match.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize, Vec<String>) {
        let mut budget: HashMap<(String, String, String), usize> = HashMap::new();
        for e in &self.entries {
            budget.insert(e.key(), e.count);
        }
        let mut kept = Vec::new();
        let mut suppressed = 0usize;
        for f in findings {
            let key = (f.rule.to_string(), f.file.clone(), f.snippet.clone());
            match budget.get_mut(&key) {
                Some(b) if *b > 0 => {
                    *b -= 1;
                    suppressed += 1;
                }
                _ => kept.push(f),
            }
        }
        let mut stale = Vec::new();
        for e in &self.entries {
            let left = budget.get(&e.key()).copied().unwrap_or(0);
            if left > 0 {
                stale.push(format!(
                    "line {}: ({}, {}, {:?}) expects {} site(s), found {}",
                    e.line,
                    e.rule,
                    e.file,
                    e.snippet,
                    e.count,
                    e.count - left
                ));
            }
        }
        (kept, suppressed, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding { rule, file: file.into(), line: 1, message: "m".into(), snippet: snippet.into() }
    }

    #[test]
    fn parse_and_apply() {
        let b = Baseline::parse("# hdr\nr1\ta.rs\t2\tlet x;\tcounters are monotonic\n").unwrap();
        let fs = vec![finding("r1", "a.rs", "let x;"), finding("r1", "a.rs", "let x;")];
        let (kept, n, stale) = b.apply(fs);
        assert!(kept.is_empty());
        assert_eq!(n, 2);
        assert!(stale.is_empty());
    }

    #[test]
    fn overflow_count_reports() {
        let b = Baseline::parse("r1\ta.rs\t1\tlet x;\tok\n").unwrap();
        let fs = vec![finding("r1", "a.rs", "let x;"), finding("r1", "a.rs", "let x;")];
        let (kept, n, stale) = b.apply(fs);
        assert_eq!(kept.len(), 1);
        assert_eq!(n, 1);
        assert!(stale.is_empty());
    }

    #[test]
    fn stale_entry_detected() {
        let b = Baseline::parse("r1\ta.rs\t2\tlet x;\tok\n").unwrap();
        let (kept, n, stale) = b.apply(vec![finding("r1", "a.rs", "let x;")]);
        assert!(kept.is_empty());
        assert_eq!(n, 1);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].contains("expects 2"));
    }

    #[test]
    fn rejects_missing_justification() {
        assert!(Baseline::parse("r1\ta.rs\t1\tlet x;\t \n").is_err());
        assert!(Baseline::parse("r1\ta.rs\t0\tlet x;\tok\n").is_err());
        assert!(Baseline::parse("r1\ta.rs\tone\tlet x;\tok\n").is_err());
        assert!(Baseline::parse("just\tthree\tfields\n").is_err());
    }
}
