//! Loading the analysis root: walking source trees and lexing files.

use crate::lexer::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// The lexed view of an analysis root that rules run against.
#[derive(Debug, Default)]
pub struct Workspace {
    /// The root directory the relative paths below hang off.
    pub root: PathBuf,
    /// Every lexed `.rs` file, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// `README.md` contents when present (the sync rules read it).
    pub readme: Option<String>,
}

/// Top-level directories scanned for Rust sources. `tests/`, `benches/` and
/// `examples/` trees are intentionally out of scope: the lints audit
/// production code, and the fixture trees under `tests/analyze_fixtures/`
/// contain seeded-bad snippets that must never leak into a workspace run.
const SCAN_DIRS: [&str; 3] = ["src", "crates", "vendor"];

/// Directory names skipped wherever they appear under a scan root.
const SKIP_DIRS: [&str; 5] = ["tests", "benches", "examples", "target", "fixtures"];

impl Workspace {
    /// Load and lex every in-scope `.rs` file under `root`.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        if !root.is_dir() {
            return Err(format!("analysis root {} is not a directory", root.display()));
        }
        let mut files = Vec::new();
        for dir in SCAN_DIRS {
            let top = root.join(dir);
            if top.is_dir() {
                walk(&top, root, &mut files)?;
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        let readme = fs::read_to_string(root.join("README.md")).ok();
        Ok(Workspace { root: root.to_path_buf(), files, readme })
    }

    /// Look up a file by exact relative path.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let text =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            let rel = rel_path(&path, root);
            out.push(SourceFile::lex(&rel, &text));
        }
    }
    Ok(())
}

/// Relative path with `/` separators regardless of platform.
fn rel_path(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().to_string())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]` — the analyzer's default root when none is given.
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(|p| p.to_path_buf());
    }
    None
}
