//! `semimatch-analyze`: the standalone static-analysis gate binary.
//! All logic lives in the library; see `semimatch_analyze::cli_main`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(semimatch_analyze::cli_main(&args));
}
