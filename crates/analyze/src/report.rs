//! Findings, text rendering, and the `--format=json` report.

use std::fmt::Write as _;

/// One diagnostic: a rule violation anchored to `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (kebab-case), e.g. `unsafe-safety-comment`.
    pub rule: &'static str,
    /// Path relative to the analysis root.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Human-readable explanation of the violation.
    pub message: String,
    /// The offending source line, trimmed — also the baseline match key.
    pub snippet: String,
}

impl Finding {
    /// `file:line: [rule] message` — the single-line text form.
    pub fn render_text(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// The complete result of an analysis run, after baseline application.
#[derive(Debug, Clone)]
pub struct Report {
    /// Analysis root (as given, for display).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Rule identifiers that ran, in execution order.
    pub rules: Vec<&'static str>,
    /// Unbaselined findings (these fail the run), sorted by file/line/rule.
    pub findings: Vec<Finding>,
    /// Count of findings suppressed by the baseline.
    pub baselined: usize,
    /// Baseline entries that no longer match anything (these fail the run:
    /// the baseline only ever shrinks).
    pub stale_baseline: Vec<String>,
}

impl Report {
    /// Does this run gate green?
    pub fn ok(&self) -> bool {
        self.findings.is_empty() && self.stale_baseline.is_empty()
    }

    /// Human-readable report: one line per finding, then a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}", f.render_text());
        }
        for s in &self.stale_baseline {
            let _ = writeln!(out, "stale baseline entry (remove it): {s}");
        }
        let _ = writeln!(
            out,
            "semimatch-analyze: {} file(s), {} rule(s), {} finding(s), {} baselined, {} stale \
             baseline entr{} — {}",
            self.files_scanned,
            self.rules.len(),
            self.findings.len(),
            self.baselined,
            self.stale_baseline.len(),
            if self.stale_baseline.len() == 1 { "y" } else { "ies" },
            if self.ok() { "ok" } else { "FAIL" }
        );
        out
    }

    /// The `--format=json` payload. Mirrors the `--metrics=json` convention:
    /// a single JSON object, emitted last on stdout, starting at the first
    /// line that begins with `{`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"tool\": \"semimatch-analyze\",");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"root\": {},", json_string(&self.root));
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let rules: Vec<String> = self.rules.iter().map(|r| json_string(r)).collect();
        let _ = writeln!(out, "  \"rules\": [{}],", rules.join(", "));
        let _ = writeln!(out, "  \"baselined\": {},", self.baselined);
        let stale: Vec<String> = self.stale_baseline.iter().map(|s| json_string(s)).collect();
        let _ = writeln!(out, "  \"stale_baseline\": [{}],", stale.join(", "));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            let _ = write!(
                out,
                "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}",
                json_string(f.rule),
                json_string(&f.file),
                f.line,
                json_string(&f.message),
                json_string(&f.snippet)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        let _ = writeln!(out, "  \"ok\": {}", self.ok());
        out.push_str("}\n");
        out
    }
}

/// Escape `s` as a JSON string literal (with surrounding quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn text_form() {
        let f = Finding {
            rule: "x-rule",
            file: "src/a.rs".into(),
            line: 7,
            message: "boom".into(),
            snippet: "let x;".into(),
        };
        assert_eq!(f.render_text(), "src/a.rs:7: [x-rule] boom");
    }
}
