//! Atomic-ordering lints over the concurrency-bearing modules.
//!
//! `atomic-ordering-justified`: every use of an atomic memory ordering
//! (`Ordering::{Relaxed, Acquire, Release, AcqRel, SeqCst}`) must carry an
//! `// ordering:` justification on the same line or directly above. The
//! pattern matches only the five atomic variants, so `std::cmp::Ordering`
//! (`Less`/`Equal`/`Greater`) never trips it.
//!
//! `relaxed-rmw`: `Ordering::Relaxed` as the *success* ordering of a
//! read-modify-write (`fetch_*`, `swap`, `compare_exchange*`, `fetch_update`)
//! is flagged unconditionally — no comment silences it. Legitimate uses
//! (statistics counters whose values synchronize nothing) live in the
//! baseline with a written justification, where they are counted and decay.

use crate::lexer::{word_positions, Line};
use crate::report::Finding;
use crate::rules::{justified, snippet};
use crate::workspace::Workspace;

pub const RULE_JUSTIFIED: &str = "atomic-ordering-justified";
pub const RULE_RELAXED_RMW: &str = "relaxed-rmw";

/// The concurrency-bearing modules under audit. Paths are relative to the
/// analysis root, so fixture trees that mirror the layout are covered too.
pub const SCOPED_FILES: [&str; 8] = [
    "vendor/rayon/src/pool.rs",
    "crates/matching/src/semi_par.rs",
    "crates/obs/src/registry.rs",
    "crates/obs/src/trace.rs",
    "crates/obs/src/lib.rs",
    "crates/serve/src/engine.rs",
    "crates/core/src/streaming.rs",
    "crates/daemon/src/daemon.rs",
];

const ATOMIC_ORDERINGS: [&str; 5] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// Read-modify-write methods whose *first* `Ordering::` argument is the
/// success ordering (true for all of them: `swap`/`fetch_*` take one,
/// `fetch_update` takes success first, `compare_exchange*` success third in
/// the argument list but first among orderings).
const RMW_METHODS: [&str; 13] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "swap",
    "compare_exchange_weak",
    "compare_exchange",
    "compare_and_swap",
];

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !SCOPED_FILES.contains(&file.rel.as_str()) {
            continue;
        }
        for (lineno, line) in file.code_lines() {
            let has_atomic = ATOMIC_ORDERINGS.iter().any(|o| line.code.contains(o));
            if has_atomic && !justified(file, lineno - 1, "ordering:", None) {
                out.push(Finding {
                    rule: RULE_JUSTIFIED,
                    file: file.rel.clone(),
                    line: lineno,
                    message: "atomic memory ordering without an `// ordering:` justification"
                        .to_string(),
                    snippet: snippet(file, lineno),
                });
            }
            for meth in relaxed_rmw_methods(line) {
                out.push(Finding {
                    rule: RULE_RELAXED_RMW,
                    file: file.rel.clone(),
                    line: lineno,
                    message: format!(
                        "`Ordering::Relaxed` as the success ordering of `{meth}` — a relaxed \
                         read-modify-write is flagged unconditionally; if the value \
                         synchronizes nothing, baseline it with a justification"
                    ),
                    snippet: snippet(file, lineno),
                });
            }
        }
    }
    out
}

/// RMW method calls on this line whose success ordering is `Relaxed`.
fn relaxed_rmw_methods(line: &Line) -> Vec<&'static str> {
    let mut out = Vec::new();
    let chars: Vec<char> = line.code.chars().collect();
    for meth in RMW_METHODS {
        for pos in word_positions(&line.code, meth) {
            // Require a method call: `.meth(`.
            if pos == 0 || chars[pos - 1] != '.' {
                continue;
            }
            let open = pos + meth.len();
            if chars.get(open) != Some(&'(') {
                continue;
            }
            // Search only the call's own argument span (up to the matching
            // `)` on this line; if the call spans lines, the rest of the
            // line — a documented limitation of the line engine).
            let mut depth = 0i32;
            let mut end = chars.len();
            for (k, &c) in chars.iter().enumerate().skip(open) {
                if c == '(' {
                    depth += 1;
                } else if c == ')' {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
            }
            let span: String = chars[open..end].iter().collect();
            let first =
                ATOMIC_ORDERINGS.iter().filter_map(|o| span.find(o).map(|at| (at, *o))).min();
            if let Some((_, "Ordering::Relaxed")) = first {
                out.push(meth);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn line(src: &str) -> Line {
        SourceFile::lex("x.rs", src).lines[0].clone()
    }

    #[test]
    fn relaxed_rmw_detected() {
        assert_eq!(line("c.fetch_add(1, Ordering::Relaxed);").strings.len(), 0);
        assert_eq!(
            relaxed_rmw_methods(&line("c.fetch_add(1, Ordering::Relaxed);")),
            vec!["fetch_add"]
        );
        assert!(relaxed_rmw_methods(&line("c.fetch_add(1, Ordering::SeqCst);")).is_empty());
    }

    #[test]
    fn compare_exchange_success_ordering_wins() {
        // Success ordering Acquire: the trailing Relaxed is the failure
        // ordering and must not trip the unconditional flag.
        let l = line("c.compare_exchange(FREE, HELD, Ordering::Acquire, Ordering::Relaxed);");
        assert!(relaxed_rmw_methods(&l).is_empty());
        let l = line("c.compare_exchange(FREE, HELD, Ordering::Relaxed, Ordering::Relaxed);");
        assert_eq!(relaxed_rmw_methods(&l), vec!["compare_exchange"]);
    }

    #[test]
    fn vec_swap_is_not_atomic() {
        let l = line("xs.swap(i, j); y.load(Ordering::Relaxed);");
        assert!(relaxed_rmw_methods(&l).is_empty());
    }
}
