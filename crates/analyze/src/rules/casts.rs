//! `truncating-cast`: `as u64` / `as u32` / `as usize` in the score,
//! objective, and lower-bound arithmetic paths. PR 5 fixed a real bug of
//! this class (a `u128 → u64` truncation in the balanced-load lower bound),
//! so new `as` casts here must either be replaced with `try_from` (saturate
//! or propagate) or carry a `// cast:` comment proving the value fits.

use crate::lexer::word_positions;
use crate::report::Finding;
use crate::rules::{justified, snippet};
use crate::workspace::Workspace;

pub const RULE: &str = "truncating-cast";

/// Score/objective/lower-bound arithmetic under audit.
pub const SCOPED_FILES: [&str; 3] = [
    "crates/core/src/objective.rs",
    "crates/core/src/lower_bound.rs",
    "crates/core/src/quality.rs",
];

const TARGETS: [&str; 3] = ["u64", "u32", "usize"];

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !SCOPED_FILES.contains(&file.rel.as_str()) {
            continue;
        }
        for (lineno, line) in file.code_lines() {
            let chars: Vec<char> = line.code.chars().collect();
            let mut hit: Option<&str> = None;
            for pos in word_positions(&line.code, "as") {
                let mut j = pos + 2;
                while j < chars.len() && chars[j] == ' ' {
                    j += 1;
                }
                let word: String =
                    chars[j..].iter().take_while(|c| c.is_alphanumeric() || **c == '_').collect();
                if let Some(t) = TARGETS.iter().find(|t| **t == word) {
                    hit = Some(t);
                    break;
                }
            }
            let Some(target) = hit else { continue };
            if !justified(file, lineno - 1, "cast:", None) {
                out.push(Finding {
                    rule: RULE,
                    file: file.rel.clone(),
                    line: lineno,
                    message: format!(
                        "`as {target}` in score/lower-bound arithmetic without a `// cast:` \
                         justification — use `try_from` (saturating or propagating) or prove \
                         the value fits"
                    ),
                    snippet: snippet(file, lineno),
                });
            }
        }
    }
    out
}
