//! `registry-sync`: the `SolverKind` registry and its documentation must
//! agree. Every enum variant must appear in `SolverKind::ALL`, have a
//! `name()` arm, be reachable from `from_str` (which iterates `ALL`), and
//! appear in the README solver map — and vice versa: `ALL` entries,
//! `from_str` alias targets, and README rows must all resolve to real
//! variants/names. The README rows live between `<!-- solver-map:begin -->`
//! and `<!-- solver-map:end -->` markers; rows marked "not a solver" are
//! reference rows and exempt.

use crate::lexer::SourceFile;
use crate::report::Finding;
use crate::rules::snippet;
use crate::workspace::Workspace;
use std::collections::BTreeMap;

pub const RULE: &str = "registry-sync";

const SOLVER_RS: &str = "crates/core/src/solver.rs";
const BEGIN: &str = "<!-- solver-map:begin -->";
const END: &str = "<!-- solver-map:end -->";

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let Some(file) = ws.file(SOLVER_RS) else { return Vec::new() };
    let mut out = Vec::new();

    let enum_block = find_block(file, "pub enum SolverKind");
    let all_block = find_block(file, "pub const ALL");
    let name_block = find_block(file, "pub fn name");
    let from_str_block = find_block(file, "fn from_str");

    // Variants declared in the enum: (name, 1-based line).
    let mut variants: Vec<(String, usize)> = Vec::new();
    if let Some((lo, hi)) = enum_block {
        for i in lo..hi {
            let t = file.lines[i].code.trim().trim_end_matches(',');
            if !t.is_empty()
                && t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && t.chars().all(|c| c.is_alphanumeric() || c == '_')
            {
                variants.push((t.to_string(), i + 1));
            }
        }
    } else {
        out.push(whole_file(file, "cannot find `pub enum SolverKind`"));
    }

    let all_refs = block_variant_refs(file, all_block);
    let from_refs = block_variant_refs(file, from_str_block);

    // name() arms: variant -> registry name string.
    let mut names: BTreeMap<String, String> = BTreeMap::new();
    if let Some((lo, hi)) = name_block {
        for i in lo..hi {
            let line = &file.lines[i];
            if line.code.contains("=>") {
                if let (Some(v), Some((_, s))) =
                    (variant_refs(&line.code).into_iter().next(), line.strings.first())
                {
                    names.insert(v, s.clone());
                }
            }
        }
    } else {
        out.push(whole_file(file, "cannot find `pub fn name`"));
    }

    let from_str_iterates_all =
        from_str_block.is_some_and(|(lo, hi)| (lo..hi).any(|i| file.lines[i].code.contains("ALL")));
    if from_str_block.is_some() && !from_str_iterates_all {
        out.push(whole_file(
            file,
            "`from_str` does not consult `SolverKind::ALL` — new variants would be unparseable",
        ));
    }

    for (v, lineno) in &variants {
        if !all_refs.iter().any(|(r, _)| r == v) {
            out.push(at(file, *lineno, format!("variant `{v}` is missing from `SolverKind::ALL`")));
        }
        if !names.contains_key(v) {
            out.push(at(file, *lineno, format!("variant `{v}` has no `name()` arm")));
        }
    }
    for (r, lineno) in all_refs.iter().chain(from_refs.iter()) {
        if !variants.iter().any(|(v, _)| v == r) {
            out.push(at(file, *lineno, format!("`SolverKind::{r}` is not a declared variant")));
        }
    }

    // README side.
    let Some(readme) = &ws.readme else {
        out.push(whole_file(file, "README.md not found — the solver map cannot be checked"));
        return out;
    };
    let Some((rows, marker_line)) = map_rows(readme) else {
        out.push(Finding {
            rule: RULE,
            file: "README.md".to_string(),
            line: 1,
            message: format!("missing `{BEGIN}` / `{END}` markers around the solver map table"),
            snippet: String::new(),
        });
        return out;
    };
    let registry_names: Vec<&String> = names.values().collect();
    for (name, lineno, raw) in &rows {
        if !registry_names.contains(&name) {
            out.push(Finding {
                rule: RULE,
                file: "README.md".to_string(),
                line: *lineno,
                message: format!("README solver map lists `{name}`, which is not a registry name"),
                snippet: raw.trim().to_string(),
            });
        }
    }
    for (v, name) in &names {
        if !rows.iter().any(|(n, _, _)| n == name) {
            out.push(Finding {
                rule: RULE,
                file: "README.md".to_string(),
                line: marker_line,
                message: format!(
                    "registry name `{name}` (variant `{v}`) is missing from the README solver map"
                ),
                snippet: String::new(),
            });
        }
    }
    out
}

fn whole_file(file: &SourceFile, msg: &str) -> Finding {
    Finding {
        rule: RULE,
        file: file.rel.clone(),
        line: 1,
        message: msg.to_string(),
        snippet: String::new(),
    }
}

fn at(file: &SourceFile, lineno: usize, message: String) -> Finding {
    Finding {
        rule: RULE,
        file: file.rel.clone(),
        line: lineno,
        message,
        snippet: snippet(file, lineno),
    }
}

/// 0-based [start, end) line range of the brace block opened at/after the
/// first line whose code contains `pat`.
fn find_block(file: &SourceFile, pat: &str) -> Option<(usize, usize)> {
    let start = file.lines.iter().position(|l| l.code.contains(pat))?;
    let mut depth = 0i32;
    let mut opened = false;
    for (i, line) in file.lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' | '[' => {
                    depth += 1;
                    opened = true;
                }
                '}' | ']' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return Some((start, i + 1));
        }
    }
    Some((start, file.lines.len()))
}

/// `SolverKind::Ident` references with line numbers inside a block.
fn block_variant_refs(file: &SourceFile, block: Option<(usize, usize)>) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    if let Some((lo, hi)) = block {
        for i in lo..hi {
            for v in variant_refs(&file.lines[i].code) {
                out.push((v, i + 1));
            }
        }
    }
    out
}

/// Every `SolverKind::Ident` (and bare `Self::Ident`) in a code line.
fn variant_refs(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    for pat in ["SolverKind::", "Self::"] {
        let mut rest = code;
        while let Some(at) = rest.find(pat) {
            let tail = &rest[at + pat.len()..];
            let ident: String =
                tail.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) && ident != "ALL" {
                out.push(ident);
            }
            rest = &rest[at + pat.len()..];
        }
    }
    out
}

/// One table row: (registry name, 1-based README line, raw row text).
type Row = (String, usize, String);

/// Solver-map rows between the markers. A row counts when one of its cells
/// is exactly a backticked lowercase name; rows flagged "not a solver" are
/// skipped.
fn map_rows(readme: &str) -> Option<(Vec<Row>, usize)> {
    let lines: Vec<&str> = readme.lines().collect();
    let begin = lines.iter().position(|l| l.contains(BEGIN))?;
    let end = lines.iter().position(|l| l.contains(END))?;
    let mut rows = Vec::new();
    for (i, raw) in lines.iter().enumerate().take(end).skip(begin + 1) {
        if !raw.trim_start().starts_with('|') || raw.contains("not a solver") {
            continue;
        }
        for cell in raw.split('|') {
            if let Some(name) = exact_backtick_name(cell.trim()) {
                rows.push((name, i + 1, raw.to_string()));
                break;
            }
        }
    }
    Some((rows, begin + 1))
}

/// `` `name` `` where name is lowercase/digits/hyphen/plus — else None.
fn exact_backtick_name(cell: &str) -> Option<String> {
    let inner = cell.strip_prefix('`')?.strip_suffix('`')?;
    let ok = !inner.is_empty()
        && inner
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '+');
    ok.then(|| inner.to_string())
}
