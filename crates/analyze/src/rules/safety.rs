//! `unsafe-safety-comment`: every `unsafe` block, fn, impl, or trait must
//! carry a `// SAFETY:` comment (same line or directly above); `unsafe fn`
//! items may instead document the contract under a `# Safety` doc section.
//! Bare `unsafe fn(…)` *pointer types* declare no new obligation and are
//! ignored.

use crate::lexer::word_positions;
use crate::report::Finding;
use crate::rules::{justified, snippet};
use crate::workspace::Workspace;

pub const RULE: &str = "unsafe-safety-comment";

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        for (lineno, line) in file.code_lines() {
            for pos in word_positions(&line.code, "unsafe") {
                let rest: String = line.code.chars().skip(pos + "unsafe".len()).collect();
                let rest = rest.trim_start();
                // `unsafe fn(` with no name is a function-pointer type, not a
                // site with a discharged obligation.
                let is_fn_ptr = rest
                    .strip_prefix("fn")
                    .map(|r| r.trim_start().starts_with('('))
                    .unwrap_or(false);
                if is_fn_ptr {
                    continue;
                }
                let is_fn_item = rest.starts_with("fn") || rest.starts_with("extern");
                let doc =
                    if is_fn_item || rest.starts_with("trait") { Some("# Safety") } else { None };
                if !justified(file, lineno - 1, "SAFETY:", doc) {
                    out.push(Finding {
                        rule: RULE,
                        file: file.rel.clone(),
                        line: lineno,
                        message: "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc \
                                  section for fn items) explaining why the contract holds"
                            .to_string(),
                        snippet: snippet(file, lineno),
                    });
                }
                // One finding per line is enough.
                break;
            }
        }
    }
    out
}
