//! The rule engine: six lints grounded in this repository's history.
//!
//! | id | checks |
//! |----|--------|
//! | `unsafe-safety-comment` | every `unsafe` block/fn/impl carries `// SAFETY:` (or a `# Safety` doc section) |
//! | `atomic-ordering-justified` | every atomic `Ordering::` use in concurrency-bearing modules carries `// ordering:` |
//! | `relaxed-rmw` | `Ordering::Relaxed` as the success ordering of a read-modify-write — flagged unconditionally (baseline-only) |
//! | `truncating-cast` | `as u64`/`as u32`/`as usize` in score/objective/lower-bound paths needs `// cast:` |
//! | `registry-sync` | `SolverKind` variants ⇆ `ALL` ⇆ `name()` ⇆ `from_str` ⇆ README solver map |
//! | `metric-sync` | metric name strings in code ⇆ README metric catalog |
//! | `no-thread-spawn` | no `std::thread::spawn` / `thread::Builder` outside `vendor/rayon` |

pub mod casts;
pub mod metric_sync;
pub mod ordering;
pub mod registry_sync;
pub mod safety;
pub mod thread_spawn;

use crate::lexer::SourceFile;
use crate::report::Finding;
use crate::workspace::Workspace;

/// Run every rule; returns the rule ids that ran and all raw findings,
/// sorted by (file, line, rule) for stable output.
pub fn run_all(ws: &Workspace) -> (Vec<&'static str>, Vec<Finding>) {
    let rules: Vec<&'static str> = vec![
        safety::RULE,
        ordering::RULE_JUSTIFIED,
        ordering::RULE_RELAXED_RMW,
        casts::RULE,
        registry_sync::RULE,
        metric_sync::RULE,
        thread_spawn::RULE,
    ];
    let mut findings = Vec::new();
    findings.extend(safety::check(ws));
    findings.extend(ordering::check(ws));
    findings.extend(casts::check(ws));
    findings.extend(registry_sync::check(ws));
    findings.extend(metric_sync::check(ws));
    findings.extend(thread_spawn::check(ws));
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    (rules, findings)
}

/// Is the site at `idx` (0-based) justified by a comment containing `marker`?
///
/// Accepts a marker in the comment channel of the line itself, or in an
/// adjacent block of lines directly above that contains only comments, blank
/// lines, and attributes. When `doc_marker` is given (e.g. `# Safety` for
/// `unsafe fn`), it is accepted in that same adjacent block — rustdoc already
/// renders it as the canonical contract location.
pub(crate) fn justified(
    file: &SourceFile,
    idx: usize,
    marker: &str,
    doc_marker: Option<&str>,
) -> bool {
    let hit =
        |comment: &str| comment.contains(marker) || doc_marker.is_some_and(|d| comment.contains(d));
    if hit(&file.lines[idx].comment) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &file.lines[i];
        if hit(&l.comment) {
            return true;
        }
        let t = l.code.trim();
        let passthrough = t.is_empty() || t.starts_with("#[") || t.starts_with("#![");
        if !passthrough {
            return false;
        }
    }
    false
}

/// Trimmed raw text of a 1-based line — the baseline snippet key.
pub(crate) fn snippet(file: &SourceFile, lineno: usize) -> String {
    file.lines.get(lineno - 1).map(|l| l.raw.trim().to_string()).unwrap_or_default()
}
