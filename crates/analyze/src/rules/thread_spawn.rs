//! `no-thread-spawn`: all parallelism rides the work-stealing pool. Direct
//! `std::thread::spawn` / `thread::Builder` use outside `vendor/rayon`
//! bypasses `RAYON_NUM_THREADS`, the worker telemetry, and the determinism
//! suite, so it is banned in production code (test modules are exempt —
//! `std::thread::scope` harnesses are how the pool itself is exercised).

use crate::report::Finding;
use crate::rules::snippet;
use crate::workspace::Workspace;

pub const RULE: &str = "no-thread-spawn";

const PATTERNS: [&str; 2] = ["thread::spawn", "thread::Builder"];

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.rel.starts_with("vendor/rayon/") {
            continue;
        }
        for (lineno, line) in file.code_lines() {
            if let Some(pat) = PATTERNS.iter().find(|p| line.code.contains(**p)) {
                out.push(Finding {
                    rule: RULE,
                    file: file.rel.clone(),
                    line: lineno,
                    message: format!(
                        "`{pat}` outside vendor/rayon — all parallelism must ride the \
                         work-stealing pool (rayon::spawn / join / scope)"
                    ),
                    snippet: snippet(file, lineno),
                });
            }
        }
    }
    out
}
