//! `metric-sync`: every metric name the code publishes must appear in the
//! README metric catalog, and every catalog row must correspond to a real
//! emission site. Emission sites are `counter_add(…)` / `gauge_set(…)` /
//! `observe(…)` calls (free functions or `Registry` methods) whose first
//! argument is a string literal or a `format!` template. Templates are
//! normalized by collapsing `{…}` interpolations to `<>`, and catalog
//! placeholders `<…>` normalize the same way, so `daemon.tenant.{id}.gap`
//! matches a catalog row `daemon.tenant.<id>.gap`.

use crate::lexer::{word_positions, Line};
use crate::report::Finding;
use crate::workspace::Workspace;
use std::collections::BTreeMap;

pub const RULE: &str = "metric-sync";

const BEGIN: &str = "<!-- metric-catalog:begin -->";
const END: &str = "<!-- metric-catalog:end -->";

const CALLS: [&str; 3] = ["counter_add", "gauge_set", "observe"];

pub fn check(ws: &Workspace) -> Vec<Finding> {
    // Emission sites: normalized name -> first (file, line, raw snippet).
    let mut emitted: BTreeMap<String, (String, usize, String)> = BTreeMap::new();
    let mut any_scoped = false;
    for file in &ws.files {
        let scoped = (file.rel.starts_with("crates/") || file.rel.starts_with("src/"))
            && !file.rel.starts_with("crates/analyze/");
        if !scoped {
            continue;
        }
        any_scoped = true;
        for (lineno, line) in file.code_lines() {
            for name in metric_names(line) {
                emitted
                    .entry(normalize(&name))
                    .or_insert_with(|| (file.rel.clone(), lineno, line.raw.trim().to_string()));
            }
        }
    }
    if !any_scoped {
        return Vec::new();
    }
    let mut out = Vec::new();
    let Some(readme) = &ws.readme else {
        if emitted.is_empty() {
            return out;
        }
        out.push(Finding {
            rule: RULE,
            file: "README.md".to_string(),
            line: 1,
            message: "README.md not found — the metric catalog cannot be checked".to_string(),
            snippet: String::new(),
        });
        return out;
    };
    let Some((catalog, _marker_line)) = catalog_rows(readme) else {
        out.push(Finding {
            rule: RULE,
            file: "README.md".to_string(),
            line: 1,
            message: format!("missing `{BEGIN}` / `{END}` markers around the metric catalog"),
            snippet: String::new(),
        });
        return out;
    };
    for (name, (file, lineno, raw)) in &emitted {
        if !catalog.iter().any(|(n, _, _)| n == name) {
            out.push(Finding {
                rule: RULE,
                file: file.clone(),
                line: *lineno,
                message: format!("metric `{name}` is not documented in the README metric catalog"),
                snippet: raw.clone(),
            });
        }
    }
    for (name, lineno, raw) in &catalog {
        if !emitted.contains_key(name) {
            out.push(Finding {
                rule: RULE,
                file: "README.md".to_string(),
                line: *lineno,
                message: format!("catalog metric `{name}` has no emission site in the code"),
                snippet: raw.trim().to_string(),
            });
        }
    }
    out
}

/// Metric name strings (literals or `format!` templates) passed as the first
/// argument of a `counter_add` / `gauge_set` / `observe` call on this line.
fn metric_names(line: &Line) -> Vec<String> {
    let chars: Vec<char> = line.code.chars().collect();
    let mut out = Vec::new();
    for call in CALLS {
        for pos in word_positions(&line.code, call) {
            let mut j = pos + call.len();
            if chars.get(j) != Some(&'(') {
                continue;
            }
            j += 1;
            // Skip `&`, whitespace, and one `format!(` wrapper.
            loop {
                while chars.get(j).is_some_and(|c| *c == '&' || c.is_whitespace()) {
                    j += 1;
                }
                let tail: String = chars[j.min(chars.len())..].iter().collect();
                if let Some(rest) = tail.strip_prefix("format!") {
                    j += "format!".len();
                    if rest.trim_start().starts_with('(') {
                        while chars.get(j).is_some_and(|c| c.is_whitespace()) {
                            j += 1;
                        }
                        j += 1; // the `(`
                        continue;
                    }
                }
                break;
            }
            if chars.get(j) == Some(&'"') {
                if let Some((_, s)) = line.strings.iter().find(|(col, _)| *col == j) {
                    out.push(s.clone());
                }
            }
        }
    }
    out
}

/// Collapse `format!`-style `{…}` interpolations and catalog `<…>`
/// placeholders to `<>` so both sides compare equal. `{{`/`}}` unescape to
/// literal braces.
fn normalize(name: &str) -> String {
    let chars: Vec<char> = name.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '{' if chars.get(i + 1) == Some(&'{') => {
                out.push('{');
                i += 2;
            }
            '}' if chars.get(i + 1) == Some(&'}') => {
                out.push('}');
                i += 2;
            }
            '{' => {
                while i < chars.len() && chars[i] != '}' {
                    i += 1;
                }
                i += 1;
                out.push_str("<>");
            }
            '<' => {
                while i < chars.len() && chars[i] != '>' {
                    i += 1;
                }
                i += 1;
                out.push_str("<>");
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// One catalog row: (normalized name, 1-based README line, raw row text).
type Row = (String, usize, String);

/// Catalog rows between the markers. A row's metric name is its first cell,
/// a backticked token.
fn catalog_rows(readme: &str) -> Option<(Vec<Row>, usize)> {
    let lines: Vec<&str> = readme.lines().collect();
    let begin = lines.iter().position(|l| l.contains(BEGIN))?;
    let end = lines.iter().position(|l| l.contains(END))?;
    let mut rows = Vec::new();
    for (i, raw) in lines.iter().enumerate().take(end).skip(begin + 1) {
        let t = raw.trim_start();
        if !t.starts_with('|') {
            continue;
        }
        let Some(cell) = raw.split('|').map(str::trim).find(|c| !c.is_empty()) else { continue };
        if let Some(inner) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) {
            if !inner.is_empty() && !inner.contains(' ') {
                rows.push((normalize(inner), i + 1, raw.to_string()));
            }
        }
    }
    Some((rows, begin + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn line(src: &str) -> Line {
        SourceFile::lex("x.rs", src).lines[0].clone()
    }

    #[test]
    fn literal_and_format_first_args() {
        assert_eq!(metric_names(&line("reg.counter_add(\"a.b\", 1);")), vec!["a.b"]);
        assert_eq!(
            metric_names(&line("reg.counter_add(&format!(\"w.{i}.steals\"), n);")),
            vec!["w.{i}.steals"]
        );
        assert!(metric_names(&line("pub fn observe(name: &str, v: u64) {}")).is_empty());
    }

    #[test]
    fn normalization() {
        assert_eq!(normalize("w.{i}.steals"), "w.<>.steals");
        assert_eq!(normalize("w.<worker>.steals"), "w.<>.steals");
        assert_eq!(normalize("daemon.tenant.{}.gap"), "daemon.tenant.<>.gap");
        assert_eq!(normalize("esc.{{x}}"), "esc.{x}");
    }
}
