//! Property tests for the matching substrate: agreement across engines,
//! König certificates, flow conservation, capacitated monotonicity.

use proptest::prelude::*;
use semimatch_graph::Bipartite;
use semimatch_matching::capacitated::{max_assignment, max_assignment_in};
use semimatch_matching::cover::certify_maximum;
use semimatch_matching::flow::FlowNetwork;
use semimatch_matching::greedy::{greedy_init, karp_sipser};
use semimatch_matching::replicate::replicate;
use semimatch_matching::{maximum_matching, maximum_matching_in, Algorithm, SearchWorkspace};

fn graph() -> impl Strategy<Value = Bipartite> {
    (1u32..24, 1u32..14).prop_flat_map(|(n, p)| {
        proptest::collection::btree_set((0..n, 0..p), 0..72).prop_map(move |edges| {
            let list: Vec<(u32, u32)> = edges.into_iter().collect();
            Bipartite::from_edges(n, p, &list).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engines_agree_and_are_certified(g in graph()) {
        let mut card = None;
        for algo in Algorithm::ALL {
            let m = maximum_matching(&g, algo);
            certify_maximum(&g, &m).unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
            match card {
                None => card = Some(m.cardinality()),
                Some(c) => prop_assert_eq!(c, m.cardinality(), "{}", algo.name()),
            }
        }
    }

    #[test]
    fn initializations_bound_the_maximum(g in graph()) {
        let maximum = maximum_matching(&g, Algorithm::Dfs).cardinality();
        let greedy = greedy_init(&g).cardinality();
        let ks = karp_sipser(&g).cardinality();
        prop_assert!(greedy <= maximum);
        prop_assert!(ks <= maximum);
        prop_assert!(2 * greedy >= maximum, "maximal ≥ half maximum");
        prop_assert!(2 * ks >= maximum);
    }

    #[test]
    fn assignment_cardinality_is_monotone_and_saturates(g in graph()) {
        let reachable: usize = (0..g.n_left()).filter(|&v| g.deg_left(v) > 0).count();
        let mut prev = 0usize;
        for d in 1..=g.n_left().max(1) {
            let a = max_assignment(&g, d);
            let c = a.cardinality();
            prop_assert!(c >= prev);
            prop_assert!(c <= reachable);
            prev = c;
            if c == reachable {
                break;
            }
        }
        prop_assert_eq!(max_assignment(&g, g.n_left().max(1)).cardinality(), reachable);
    }

    #[test]
    fn matching_equals_unit_capacity_assignment(g in graph()) {
        let m = maximum_matching(&g, Algorithm::HopcroftKarp).cardinality();
        let a = max_assignment(&g, 1).cardinality();
        prop_assert_eq!(m, a);
    }

    #[test]
    fn capacitated_flow_agrees_with_replication(g in graph(), d in 1u32..5) {
        // The two G_D formulations of §IV-A: capacitated max-flow on g vs a
        // maximum matching in the literally replicated graph. Cardinalities
        // must coincide for every deadline.
        let via_flow = max_assignment(&g, d);
        via_flow.validate(&g, d).unwrap();
        let gd = replicate(&g, d);
        let via_replication = maximum_matching(&gd, Algorithm::HopcroftKarp);
        via_replication.validate(&gd).unwrap();
        prop_assert_eq!(via_flow.cardinality(), via_replication.cardinality());
    }

    #[test]
    fn workspace_reuse_is_invisible(g in graph(), d in 1u32..4) {
        // One workspace threaded through every engine and the capacitated
        // solver must reproduce the cold path exactly.
        let mut ws = SearchWorkspace::new();
        for algo in Algorithm::ALL {
            let warm = maximum_matching_in(&g, algo, &mut ws);
            prop_assert_eq!(warm, maximum_matching(&g, algo), "{}", algo.name());
        }
        let warm = max_assignment_in(&g, d, &mut ws);
        prop_assert_eq!(warm, max_assignment(&g, d));
        // And again, to cover the already-warm (fully allocated) path.
        let warm2 = max_assignment_in(&g, d, &mut ws);
        prop_assert_eq!(warm2, max_assignment(&g, d));
    }

    #[test]
    fn flow_conservation_on_random_networks(
        arcs in proptest::collection::vec((0u32..8, 0u32..8, 1u64..20), 1..24)
    ) {
        let mut net = FlowNetwork::new(8);
        let mut ids = Vec::new();
        for &(a, b, c) in &arcs {
            if a != b {
                ids.push((net.add_arc(a, b, c), a, b, c));
            }
        }
        prop_assume!(!ids.is_empty());
        let total = net.max_flow(0, 7);
        // Conservation at every internal vertex.
        let mut balance = [0i128; 8];
        for &(id, a, b, c) in &ids {
            let f = net.flow(id);
            prop_assert!(f <= c, "flow exceeds capacity");
            balance[a as usize] -= f as i128;
            balance[b as usize] += f as i128;
        }
        for (v, &b) in balance.iter().enumerate().take(7).skip(1) {
            prop_assert_eq!(b, 0, "conservation at {}", v);
        }
        prop_assert_eq!(balance[7], total as i128);
        prop_assert_eq!(balance[0], -(total as i128));
    }
}
