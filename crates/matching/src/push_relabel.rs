//! Push-relabel maximum matching with global relabeling.
//!
//! The bipartite specialization of Goldberg–Tarjan used by the paper (via
//! the MatchMaker suite; see Kaya, Langguth, Manne, Uçar, *Push-relabel
//! based algorithms for the maximum transversal problem*, C&OR 2013).
//!
//! Labels `ψ(u)` live on right vertices and lower-bound the alternating
//! distance (counted in right vertices) from `u` to an exposed right vertex.
//! An active (exposed) left vertex `v` matches the neighbor with minimum
//! label, stealing it if necessary, and relabels that neighbor to
//! `second_min + 1`. Periodic global relabeling recomputes exact distances
//! by multi-source BFS from the exposed right vertices, which is what makes
//! the method fast in practice.

use semimatch_graph::Bipartite;

use crate::greedy::greedy_init;
use crate::matching::{Matching, NONE};
use crate::workspace::SearchWorkspace;

/// Tuning: run a global relabel after this many relabel operations,
/// expressed as a multiple of `n_right`.
const GLOBAL_RELABEL_FREQ: f64 = 1.0;

/// Maximum matching by push-relabel, starting from a greedy matching.
pub fn push_relabel(g: &Bipartite) -> Matching {
    push_relabel_from(g, greedy_init(g))
}

/// Maximum matching by push-relabel from a caller-supplied matching.
pub fn push_relabel_from(g: &Bipartite, m: Matching) -> Matching {
    push_relabel_from_in(g, m, &mut SearchWorkspace::new())
}

/// [`push_relabel_from`] drawing all scratch (labels, the active FIFO, the
/// global-relabel BFS queue) from a reusable workspace. Allocation-free
/// once `ws` has seen the graph's dimensions.
pub fn push_relabel_from_in(g: &Bipartite, mut m: Matching, ws: &mut SearchWorkspace) -> Matching {
    let n2 = g.n_right() as usize;
    ws.reserve(g.n_left(), g.n_right());
    // Split borrows: labels carry ψ, queue is the active FIFO, aux is the
    // global-relabel BFS frontier.
    let SearchWorkspace { labels, queue, aux, .. } = ws;
    let infinity = (n2 + 1) as u32; // label meaning "no exposed right reachable"
    let psi = &mut labels[..n2];
    global_relabel(g, &m, psi, infinity, aux);

    // FIFO queue of active (exposed) left vertices: a grow-only vector with
    // a head index (total pushes are bounded by the push count).
    queue.clear();
    queue.extend(m.exposed_left().filter(|&v| g.deg_left(v) > 0));
    let mut head = 0;
    let mut relabels_since_global = 0usize;
    let relabel_budget = ((GLOBAL_RELABEL_FREQ * n2 as f64) as usize).max(16);

    while head < queue.len() {
        // Compact once the dead prefix dominates: keeps the retained length
        // O(active) even on instances with long displacement chains, where
        // total re-activations far exceed the vertex count.
        if head >= 1024 && head * 2 >= queue.len() {
            queue.drain(..head);
            head = 0;
        }
        let v = queue[head];
        head += 1;
        if m.mate_left[v as usize] != NONE {
            continue; // matched in the meantime
        }
        // Find minimum- and second-minimum-label neighbors.
        let mut best = NONE;
        let mut best_psi = u32::MAX;
        let mut second_psi = u32::MAX;
        for &u in g.neighbors(v) {
            let p = psi[u as usize];
            if p < best_psi {
                second_psi = best_psi;
                best_psi = p;
                best = u;
            } else if p < second_psi {
                second_psi = p;
            }
        }
        if best == NONE || best_psi >= infinity {
            // No exposed right vertex reachable: v stays unmatched.
            continue;
        }
        // Push: match v to `best`, dethroning its previous mate.
        let prev = m.mate_right[best as usize];
        m.couple(v, best);
        if prev != NONE {
            queue.push(prev);
        }
        // Relabel `best` to one more than the second minimum (or to
        // infinity when v had a single eligible neighbor).
        let new_psi =
            if second_psi == u32::MAX { infinity } else { (second_psi + 1).min(infinity) };
        if new_psi > psi[best as usize] {
            psi[best as usize] = new_psi;
            relabels_since_global += 1;
            if relabels_since_global >= relabel_budget {
                global_relabel(g, &m, psi, infinity, aux);
                relabels_since_global = 0;
            }
        }
    }
    m
}

/// Multi-source BFS from exposed right vertices; exact alternating
/// distances make every label tight. `queue` is caller-provided scratch.
fn global_relabel(
    g: &Bipartite,
    m: &Matching,
    psi: &mut [u32],
    infinity: u32,
    queue: &mut Vec<u32>,
) {
    psi.iter_mut().for_each(|p| *p = infinity);
    queue.clear();
    for u in 0..g.n_right() {
        if m.mate_right[u as usize] == NONE {
            psi[u as usize] = 0;
            queue.push(u);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let du = psi[u as usize];
        // Alternating step: a row v adjacent to u via a non-matching edge,
        // whose own matched column then sits one level further.
        for &v in g.rneighbors(u) {
            let um = m.mate_left[v as usize];
            if um != NONE && um != u && psi[um as usize] == infinity {
                psi[um as usize] = du + 1;
                queue.push(um);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity)] // edge-list test fixtures
mod tests {
    use super::*;
    use crate::dfs::mc21;
    use crate::hopcroft_karp::hopcroft_karp;

    #[test]
    fn simple_augmentation() {
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let m = push_relabel(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.cardinality(), 2);
    }

    #[test]
    fn agrees_with_hk_and_dfs() {
        let cases: Vec<(u32, u32, Vec<(u32, u32)>)> = vec![
            (3, 3, vec![(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]),
            (5, 4, vec![(0, 0), (1, 0), (2, 0), (3, 1), (3, 2), (4, 3), (0, 3)]),
            (4, 4, vec![(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3), (3, 3), (3, 0)]),
            (6, 3, vec![(0, 0), (1, 0), (2, 1), (3, 1), (4, 2), (5, 2)]),
            (3, 1, vec![(0, 0), (1, 0), (2, 0)]),
        ];
        for (n1, n2, edges) in cases {
            let g = Bipartite::from_edges(n1, n2, &edges).unwrap();
            let pr = push_relabel(&g);
            pr.validate(&g).unwrap();
            assert_eq!(pr.cardinality(), hopcroft_karp(&g).cardinality(), "{edges:?}");
            assert_eq!(pr.cardinality(), mc21(&g).cardinality(), "{edges:?}");
        }
    }

    #[test]
    fn long_chain_needs_many_steals() {
        let k = 100u32;
        let mut edges = Vec::new();
        for i in 0..k {
            edges.push((i, i));
            edges.push((i, i + 1));
        }
        edges.push((k, 0));
        let g = Bipartite::from_edges(k + 1, k + 1, &edges).unwrap();
        let m = push_relabel(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.cardinality(), (k + 1) as usize);
    }

    #[test]
    fn unmatchable_vertices_terminate() {
        // Two tasks share a single processor; one must remain unmatched and
        // the algorithm must not loop.
        let g = Bipartite::from_edges(2, 1, &[(0, 0), (1, 0)]).unwrap();
        let m = push_relabel(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.cardinality(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Bipartite::from_edges(0, 0, &[]).unwrap();
        assert_eq!(push_relabel(&g).cardinality(), 0);
    }

    #[test]
    fn isolated_left_vertices_skipped() {
        let g = Bipartite::from_edges(4, 2, &[(1, 0), (3, 1)]).unwrap();
        let m = push_relabel(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.cardinality(), 2);
    }
}
