//! Parallel phase extraction for the generalized Hopcroft–Karp engine.
//!
//! [`semi`](crate::semi) descends a complete assignment along shortest
//! load-reducing paths one phase at a time; within a phase, the DFS
//! extraction from the bottleneck sources is embarrassingly parallel *up
//! to path disjointness*. This module shards the source set across the
//! rayon pool and makes disjointness explicit with a per-processor
//! **claim word**:
//!
//! * `FREE` — nobody is on this processor; a worker may CAS it to `HELD`
//!   (`Acquire`) to walk through it;
//! * `HELD` — some worker's DFS stack currently runs through it, or it is
//!   the target of a flip in progress; other workers skip it;
//! * `DEAD` — a worker exhausted it (none of its tasks reach a target),
//!   so no later path this phase can use it.
//!
//! A worker holds the claims of every processor on its DFS stack. On a
//! successful flip it releases the whole path back to `FREE` (`Release`,
//! pairing with the next claimant's `Acquire`); on exhaustion it marks
//! the processor `DEAD` and backtracks. Since claims are only ever
//! *tried*, never waited on, there is no lock order and no deadlock.
//!
//! Why this preserves the sequential engine's invariants:
//!
//! * **Sources are never intermediates.** A source has level 0 and DFS
//!   only steps to level `d + 1 ≥ 1`, so no other worker ever touches a
//!   source's load or task list — the `load == l_max` source check stays
//!   valid without coordination.
//! * **Flips are claim-local.** A flip mutates loads and intrusive task
//!   lists of exactly the processors on the flipping worker's stack plus
//!   the claimed target, all of which it holds.
//! * **Contention only costs phases, not correctness.** A worker that
//!   skips a `HELD` processor (or dead-marks under contention) may miss a
//!   path the sequential engine would have found; the missed load
//!   reduction is simply rediscovered by a later phase's fresh BFS. If an
//!   entire parallel round flips nothing while the BFS had found a
//!   target, the round is re-run sequentially with fresh claims — the
//!   standard level-graph argument guarantees that run flips at least one
//!   path, so the descent always makes progress.
//!
//! The fixpoint test (no bottleneck processor reaches a processor of load
//! `≤ L − 2`) is evaluated by the same sequential BFS as the sequential
//! engine, so the parallel engine terminates with the identical
//! optimality certificate: **bit-identical optimal makespan**, even
//! though phase/flip counts may differ run to run.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use rayon::prelude::*;
use semimatch_graph::Bipartite;
use semimatch_obs as obs;

use crate::matching::NONE;
use crate::semi::SemiAssignment;

/// Claim states for a processor within one extraction phase.
const FREE: u32 = 0;
const DEAD: u32 = 1;
const HELD: u32 = 2;

/// Below this many bottleneck sources a phase is extracted sequentially:
/// the claim traffic and chunk spawn cost more than the walk itself.
const PAR_SOURCE_THRESHOLD: usize = 16;

/// Shared mutable state of one parallel descent. Every array is indexed
/// exactly like its [`SearchWorkspace`](crate::workspace::SearchWorkspace)
/// counterpart in the sequential engine; atomicity replaces `&mut`.
///
/// Data words (`loads`, lists, cursors, `pred`) are accessed with
/// `Relaxed` ordering *under a claim*: the claim word's `Acquire`/`Release`
/// edges order every handoff of a processor between workers.
struct ParState {
    /// Per-processor load.
    loads: Vec<AtomicU32>,
    /// Assigned processor of each task.
    task_to_proc: Vec<AtomicU32>,
    /// Intrusive per-processor list of assigned tasks.
    list_head: Vec<AtomicU32>,
    list_next: Vec<AtomicU32>,
    list_prev: Vec<AtomicU32>,
    /// Per-task adjacency cursor (reset whenever a DFS enters the task).
    lookahead: Vec<AtomicU32>,
    /// Task by which the DFS entered each processor (path back-pointers).
    pred: Vec<AtomicU32>,
    /// Claim word per processor: `FREE` / `DEAD` / `HELD`.
    claim: Vec<AtomicU32>,
    /// Claim CAS attempts that lost (processor already `HELD`/`DEAD`).
    /// Only bumped while a collecting recorder is installed.
    cas_failures: AtomicU64,
}

impl ParState {
    fn load(&self, u: u32) -> u32 {
        // ordering: Relaxed — load words are only written phase-sequentially
        // (all workers joined) or under a claimed processor; the claim CAS
        // Acquire/Release pair publishes them across workers.
        self.loads[u as usize].load(Ordering::Relaxed)
    }
}

/// Bottleneck-optimal semi-matching assignment on unit tasks, extracting
/// each Hopcroft–Karp phase in parallel across the rayon pool.
///
/// Produces an assignment whose `max_load()` is bit-identical to
/// [`optimal_semi_assignment`](crate::semi::optimal_semi_assignment) —
/// both are the optimum — though the witness assignment, phase count and
/// flip count may differ. Allocates its own atomic scratch; prefer the
/// sequential warm path for small or repeated solves.
pub fn optimal_semi_assignment_par(g: &Bipartite) -> SemiAssignment {
    let _span = obs::span!("hk_semi.solve_par");
    let n1 = g.n_left() as usize;
    let n2 = g.n_right() as usize;

    // Greedy seed, identical to the sequential engine: each task takes its
    // currently least-loaded eligible processor.
    let mut loads = vec![0u32; n2];
    let mut list_head = vec![NONE; n2];
    let mut list_next = vec![NONE; n1];
    let mut list_prev = vec![NONE; n1];
    let mut task_to_proc = vec![NONE; n1];
    for t in 0..n1 {
        let mut best = NONE;
        let mut best_load = u32::MAX;
        for &u in g.neighbors(t as u32) {
            if loads[u as usize] < best_load {
                best_load = loads[u as usize];
                best = u;
            }
        }
        if best != NONE {
            let h = list_head[best as usize];
            list_next[t] = h;
            if h != NONE {
                list_prev[h as usize] = t as u32;
            }
            list_head[best as usize] = t as u32;
            task_to_proc[t] = best;
            loads[best as usize] += 1;
        }
    }

    let state = ParState {
        loads: loads.into_iter().map(AtomicU32::new).collect(),
        task_to_proc: task_to_proc.into_iter().map(AtomicU32::new).collect(),
        list_head: list_head.into_iter().map(AtomicU32::new).collect(),
        list_next: list_next.into_iter().map(AtomicU32::new).collect(),
        list_prev: list_prev.into_iter().map(AtomicU32::new).collect(),
        lookahead: (0..n1).map(|_| AtomicU32::new(0)).collect(),
        pred: (0..n1.max(n2)).map(|_| AtomicU32::new(NONE)).collect(),
        claim: (0..n2).map(|_| AtomicU32::new(FREE)).collect(),
        cas_failures: AtomicU64::new(0),
    };

    let mut rdist = vec![u32::MAX; n2];
    let mut queue: Vec<u32> = Vec::new();
    let mut phases = 0u32;
    let mut flips = 0u64;
    let mut bfs_levels = 0u64;
    let mut fallback_rounds = 0u64;
    loop {
        let l_max = (0..n2 as u32).map(|u| state.load(u)).max().unwrap_or(0);
        if l_max <= 1 {
            break;
        }
        // Sequential multi-source BFS, exactly as in the sequential
        // engine. All pool workers are parked between phases (the
        // par_iter below joins), so Relaxed reads see every flip.
        rdist.fill(u32::MAX);
        queue.clear();
        for u in 0..n2 {
            if state.load(u as u32) == l_max {
                rdist[u] = 0;
                queue.push(u as u32);
            }
        }
        let mut found_level = u32::MAX;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let du = rdist[u as usize];
            if du >= found_level {
                break;
            }
            // ordering: Relaxed — BFS runs between phases; the par_iter join
            // already ordered every worker's list edits before this read.
            let mut t = state.list_head[u as usize].load(Ordering::Relaxed);
            while t != NONE {
                for &w in g.neighbors(t) {
                    if rdist[w as usize] != u32::MAX {
                        continue;
                    }
                    rdist[w as usize] = du + 1;
                    if state.load(w) + 2 <= l_max {
                        found_level = du + 1;
                    } else {
                        queue.push(w);
                    }
                }
                t = state.list_next[t as usize].load(Ordering::Relaxed); // ordering: as above
            }
        }
        if found_level == u32::MAX {
            break; // no bottleneck processor can shed load: optimal
        }
        phases += 1;
        bfs_levels += found_level as u64;

        let sources: Vec<u32> =
            (0..n2 as u32).filter(|&u| rdist[u as usize] == 0 && state.load(u) == l_max).collect();
        for c in &state.claim {
            // ordering: Relaxed — phase-sequential reset; the fork into
            // par_iter publishes it to the workers.
            c.store(FREE, Ordering::Relaxed);
        }
        let threads = rayon::current_num_threads();
        let go_parallel = threads > 1 && sources.len() >= PAR_SOURCE_THRESHOLD;
        let mut phase_flips = if go_parallel {
            let chunk = sources.len().div_ceil(threads);
            let parts: Vec<&[u32]> = sources.chunks(chunk).collect();
            let counts: Vec<u64> = parts
                .into_par_iter()
                .map(|part| {
                    let mut stack: Vec<(u32, u32)> = Vec::new();
                    let mut local = 0u64;
                    for &src in part {
                        if claim_dfs(g, &state, &rdist, src, l_max, &mut stack) {
                            local += 1;
                        }
                    }
                    local
                })
                .collect();
            counts.iter().sum()
        } else {
            extract_sequential(g, &state, &rdist, &sources, l_max)
        };
        if phase_flips == 0 && go_parallel {
            // Mutual claim blocking starved every worker. Re-run the
            // round sequentially with fresh claims: the level graph still
            // holds a source→target path, so this flips at least once.
            for c in &state.claim {
                c.store(FREE, Ordering::Relaxed); // ordering: as the reset above
            }
            fallback_rounds += 1;
            phase_flips = extract_sequential(g, &state, &rdist, &sources, l_max);
        }
        if phase_flips == 0 {
            // Unreachable by the level-graph argument; bail rather than
            // loop forever if the invariant is ever broken.
            debug_assert!(false, "BFS found a target but extraction flipped nothing");
            break;
        }
        flips += phase_flips;
    }

    if obs::enabled() {
        obs::counter_add("hk_semi.solves", 1);
        obs::counter_add("hk_semi.phases", phases as u64);
        obs::counter_add("hk_semi.paths_extracted", flips);
        obs::counter_add("hk_semi.bfs_levels", bfs_levels);
        // ordering: Relaxed — read after every phase joined; counts final.
        obs::counter_add("hk_semi.par.cas_failures", state.cas_failures.load(Ordering::Relaxed));
        obs::counter_add("hk_semi.par.fallback_rounds", fallback_rounds);
    }
    SemiAssignment {
        // ordering: Relaxed — single-threaded unload after the final join.
        task_to_proc: state.task_to_proc.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
        loads: state.loads.iter().map(|a| a.load(Ordering::Relaxed)).collect(), // ordering: as above
        phases,
        flips,
    }
}

/// One extraction round on the calling thread (also the zero-flip
/// fallback). With a single walker every CAS succeeds, so this is
/// step-for-step the sequential engine's DFS phase.
fn extract_sequential(
    g: &Bipartite,
    state: &ParState,
    rdist: &[u32],
    sources: &[u32],
    l_max: u32,
) -> u64 {
    let mut stack: Vec<(u32, u32)> = Vec::new();
    let mut local = 0u64;
    for &src in sources {
        if claim_dfs(g, state, rdist, src, l_max, &mut stack) {
            local += 1;
        }
    }
    local
}

/// One source's DFS through the level graph, entering processors only
/// under claim. Flips and returns `true` on reaching a processor of load
/// `≤ l_max − 2`; dead-marks every processor it exhausts.
fn claim_dfs(
    g: &Bipartite,
    s: &ParState,
    rdist: &[u32],
    src: u32,
    l_max: u32,
    stack: &mut Vec<(u32, u32)>,
) -> bool {
    // The source's load can only have been changed by this worker's own
    // earlier flips (sources are never on other workers' paths).
    if s.load(src) != l_max {
        return false;
    }
    if s.claim[src as usize]
        // ordering: Acquire on success pairs with the Release that last freed
        // or dead-marked this claim, publishing the owner's list/load edits;
        // Relaxed on failure — losers never touch the protected data.
        .compare_exchange(FREE, HELD, Ordering::Acquire, Ordering::Relaxed)
        .is_err()
    {
        if obs::enabled() {
            // ordering: Relaxed — statistics counter, read after the joins.
            s.cas_failures.fetch_add(1, Ordering::Relaxed);
        }
        return false; // dead-marked by an earlier walk of our own chunk
    }
    stack.clear();
    // ordering: Relaxed — `src` is HELD by us; the claim CAS Acquire above
    // ordered the previous owner's edits (same for every load/store on
    // claimed processors below).
    let h = s.list_head[src as usize].load(Ordering::Relaxed);
    if h != NONE {
        s.lookahead[h as usize].store(0, Ordering::Relaxed); // ordering: under claim
    }
    stack.push((src, h));
    while let Some(&(u, mut tcur)) = stack.last() {
        let du = rdist[u as usize];
        let mut next_proc = NONE;
        while tcur != NONE {
            let nbrs = g.neighbors(tcur);
            let mut k = s.lookahead[tcur as usize].load(Ordering::Relaxed) as usize; // ordering: under claim
            while k < nbrs.len() {
                let w = nbrs[k];
                k += 1;
                if rdist[w as usize] == du + 1 {
                    if s.claim[w as usize]
                        // ordering: as the source claim CAS above
                        .compare_exchange(FREE, HELD, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                    {
                        // `HELD` and `DEAD` processors are skipped alike:
                        // a transient miss only defers the path to a
                        // later phase.
                        next_proc = w;
                        break;
                    }
                    if obs::enabled() {
                        // ordering: Relaxed — statistics counter.
                        s.cas_failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            s.lookahead[tcur as usize].store(k as u32, Ordering::Relaxed); // ordering: under claim
            if next_proc != NONE {
                break;
            }
            tcur = s.list_next[tcur as usize].load(Ordering::Relaxed); // ordering: under claim
            if tcur != NONE {
                s.lookahead[tcur as usize].store(0, Ordering::Relaxed); // ordering: under claim
            }
        }
        stack.last_mut().expect("loop invariant").1 = tcur;
        if next_proc == NONE {
            // Every task of `u` is exhausted: nothing below `u` reaches a
            // target this phase.
            // ordering: Release — publishes the exhausted lookahead cursors
            // to whichever worker next observes this claim word.
            s.claim[u as usize].store(DEAD, Ordering::Release);
            stack.pop();
            continue;
        }
        let w = next_proc;
        s.pred[w as usize].store(tcur, Ordering::Relaxed); // ordering: under claim of `w`
                                                           // Re-check the target condition *after* claiming: another flip
                                                           // may have raised `w`'s load since the BFS. A former target that
                                                           // filled up is walked through as a plain intermediate, exactly as
                                                           // in the sequential engine.
        if s.load(w) + 2 <= l_max {
            flip_path(s, rdist, w);
            // ordering: Release — hands the processor (and the flip's list
            // and load edits) to the next claimant's Acquire CAS.
            s.claim[w as usize].store(FREE, Ordering::Release);
            for &(p, _) in stack.iter() {
                s.claim[p as usize].store(FREE, Ordering::Release); // ordering: as above
            }
            return true;
        }
        let h = s.list_head[w as usize].load(Ordering::Relaxed); // ordering: under claim
        if h != NONE {
            s.lookahead[h as usize].store(0, Ordering::Relaxed); // ordering: under claim
        }
        stack.push((w, h));
    }
    false
}

/// Flips the discovered path (all processors on it are claimed by the
/// caller): every task on it moves one processor forward, shifting one
/// unit of load from the level-0 source onto the target.
fn flip_path(s: &ParState, rdist: &[u32], mut w: u32) {
    loop {
        // ordering: Relaxed throughout — every processor on the path is HELD
        // by this worker; the Release on the claim words publishes the edits.
        let t = s.pred[w as usize].load(Ordering::Relaxed);
        let u = s.task_to_proc[t as usize].load(Ordering::Relaxed); // ordering: under claim
        unlink(s, u, t);
        link_front(s, w, t);
        s.task_to_proc[t as usize].store(w, Ordering::Relaxed); // ordering: under claim
        s.loads[u as usize].fetch_sub(1, Ordering::Relaxed); // ordering: under claim
        s.loads[w as usize].fetch_add(1, Ordering::Relaxed); // ordering: under claim
        if rdist[u as usize] == 0 {
            return; // reached the source
        }
        w = u;
    }
}

/// Pushes task `t` onto claimed processor `u`'s intrusive assigned list.
fn link_front(s: &ParState, u: u32, t: u32) {
    // ordering: Relaxed throughout — `u` is HELD by the caller; publication
    // rides the claim word's Release/Acquire (see `claim_dfs`).
    let h = s.list_head[u as usize].load(Ordering::Relaxed);
    s.list_next[t as usize].store(h, Ordering::Relaxed); // ordering: under claim
    s.list_prev[t as usize].store(NONE, Ordering::Relaxed); // ordering: under claim
    if h != NONE {
        s.list_prev[h as usize].store(t, Ordering::Relaxed); // ordering: under claim
    }
    s.list_head[u as usize].store(t, Ordering::Relaxed); // ordering: under claim
}

/// Removes task `t` from claimed processor `u`'s intrusive assigned list.
fn unlink(s: &ParState, u: u32, t: u32) {
    // ordering: Relaxed throughout — `u` is HELD by the caller; publication
    // rides the claim word's Release/Acquire (see `claim_dfs`).
    let prev = s.list_prev[t as usize].load(Ordering::Relaxed);
    let next = s.list_next[t as usize].load(Ordering::Relaxed); // ordering: under claim
    if prev == NONE {
        s.list_head[u as usize].store(next, Ordering::Relaxed); // ordering: under claim
    } else {
        s.list_next[prev as usize].store(next, Ordering::Relaxed); // ordering: under claim
    }
    if next != NONE {
        s.list_prev[next as usize].store(prev, Ordering::Relaxed); // ordering: under claim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semi::optimal_semi_assignment;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// Deterministic random instance with enough width that bottleneck
    /// source sets clear [`PAR_SOURCE_THRESHOLD`].
    fn random_instance(seed: u64, n: u32, p: u32) -> Bipartite {
        let mut st = seed | 1;
        let mut edges = Vec::new();
        for t in 0..n {
            let deg = 1 + xorshift(&mut st) % 3;
            // Skewed: most tasks cluster on a few processors so phases
            // actually have work to do.
            let base = (xorshift(&mut st) % (p as u64).max(1)) as u32;
            for d in 0..deg as u32 {
                edges.push((t, (base + d * d) % p));
            }
        }
        Bipartite::from_edges(n, p, &edges).unwrap()
    }

    fn check_valid(g: &Bipartite, a: &SemiAssignment) {
        let mut loads = vec![0u32; g.n_right() as usize];
        for (t, &u) in a.task_to_proc.iter().enumerate() {
            if u == NONE {
                assert!(g.neighbors(t as u32).is_empty(), "task {t} skipped despite edges");
                continue;
            }
            assert!(g.neighbors(t as u32).contains(&u), "task {t}: foreign allocation");
            loads[u as usize] += 1;
        }
        assert_eq!(loads, a.loads, "stale loads");
    }

    #[test]
    fn matches_sequential_optimum_across_thread_counts() {
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            for case in 0..12u64 {
                let g = random_instance(0x5bd1e995 + case, 600 + 40 * case as u32, 24);
                let seq = optimal_semi_assignment(&g);
                let par = pool.install(|| optimal_semi_assignment_par(&g));
                check_valid(&g, &par);
                assert_eq!(
                    par.max_load(),
                    seq.max_load(),
                    "case {case} at {threads} threads: objective diverged"
                );
            }
        }
    }

    #[test]
    fn small_and_degenerate_instances() {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let g = Bipartite::from_edges(0, 3, &[]).unwrap();
            assert_eq!(optimal_semi_assignment_par(&g).max_load(), 0);
            let g = Bipartite::from_edges(2, 1, &[(0, 0)]).unwrap();
            let a = optimal_semi_assignment_par(&g);
            assert_eq!(a.task_to_proc[1], NONE);
            assert_eq!(a.max_load(), 1);
            let g = Bipartite::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
            assert_eq!(optimal_semi_assignment_par(&g).max_load(), 1);
        });
    }

    #[test]
    fn oversubscribed_pool_stress() {
        // More workers than cores forces preemption mid-claim: the claim
        // protocol must still converge to the optimum.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let g = random_instance(0xdecafbad, 4000, 32);
        let seq = optimal_semi_assignment(&g);
        for _ in 0..3 {
            let par = pool.install(|| optimal_semi_assignment_par(&g));
            check_valid(&g, &par);
            assert_eq!(par.max_load(), seq.max_load());
        }
    }
}
