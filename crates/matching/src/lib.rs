//! # semimatch-matching
//!
//! Maximum bipartite matching algorithms — a Rust rebuild of the substrate
//! the paper took from the MatchMaker suite (Duff, Kaya, Uçar, TOMS 2011;
//! Kaya, Langguth, Manne, Uçar, C&OR 2013).
//!
//! * initialization heuristics: [`greedy::greedy_init`], [`greedy::karp_sipser`]
//! * augmenting-path solvers: [`dfs::mc21`] (lookahead DFS), [`bfs::pfp`]
//! * [`hopcroft_karp::hopcroft_karp`] — `O(√V · E)`
//! * [`push_relabel::push_relabel`] — the paper's matching engine, FIFO with
//!   global relabeling
//! * [`capacitated::max_assignment`] — matchings in the deadline graph `G_D`
//!   via a generic Dinic max-flow ([`flow::FlowNetwork`])
//! * [`cover::certify_maximum`] — König vertex-cover certificates used by
//!   the test suite to *prove* matchings maximum
//!
//! ```
//! use semimatch_graph::Bipartite;
//! use semimatch_matching::{maximum_matching, Algorithm};
//!
//! let g = Bipartite::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
//! let m = maximum_matching(&g, Algorithm::PushRelabel);
//! assert_eq!(m.cardinality(), 2);
//! ```

#![warn(missing_docs)]
// Index-based loops over parallel arrays are the idiom throughout the
// matching kernels (mate/degree/label arrays evolve together); the
// iterator rewrites clippy suggests would borrow-conflict.
#![allow(clippy::needless_range_loop)]

pub mod bfs;
pub mod capacitated;
pub mod cover;
pub mod dfs;
pub mod flow;
pub mod greedy;
pub mod hopcroft_karp;
pub mod matching;
pub mod push_relabel;
pub mod replicate;
pub mod semi;
pub mod semi_par;
pub mod workspace;

pub use capacitated::{feasible, max_assignment, max_assignment_with_capacities, Assignment};
pub use cover::{certify_maximum, koenig_cover, VertexCover};
pub use flow::FlowNetwork;
pub use matching::{Matching, NONE};
pub use semi::{optimal_semi_assignment, optimal_semi_assignment_in, SemiAssignment};
pub use semi_par::optimal_semi_assignment_par;
pub use workspace::SearchWorkspace;

/// Selector for the maximum-matching engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Lookahead DFS augmentation (MC21 style).
    Dfs,
    /// Per-vertex BFS augmentation (PFP style).
    Bfs,
    /// Hopcroft–Karp phases.
    HopcroftKarp,
    /// FIFO push-relabel with global relabeling (the paper's engine).
    PushRelabel,
}

impl Algorithm {
    /// All engines, for exhaustive cross-checking in tests and benches.
    pub const ALL: [Algorithm; 4] =
        [Algorithm::Dfs, Algorithm::Bfs, Algorithm::HopcroftKarp, Algorithm::PushRelabel];

    /// Short stable name (used in bench ids and reports).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Dfs => "dfs-lookahead",
            Algorithm::Bfs => "bfs-pfp",
            Algorithm::HopcroftKarp => "hopcroft-karp",
            Algorithm::PushRelabel => "push-relabel",
        }
    }
}

/// Computes a maximum matching of `g` with the chosen engine.
pub fn maximum_matching(g: &semimatch_graph::Bipartite, algo: Algorithm) -> Matching {
    maximum_matching_with_init(g, algo, Init::Greedy)
}

/// Computes a maximum matching of `g` reusing `ws` for every piece of
/// engine scratch. The warm path of repeated solves: no allocation besides
/// the returned matching once the workspace has seen the sweep's largest
/// dimensions.
pub fn maximum_matching_in(
    g: &semimatch_graph::Bipartite,
    algo: Algorithm,
    ws: &mut SearchWorkspace,
) -> Matching {
    maximum_matching_with_init_in(g, algo, Init::Greedy, ws)
}

/// Jump-start heuristic handed to the exact engines.
///
/// The effect of initialization on matching performance is the subject of
/// the paper's reference \[16] (Langguth, Manne, Sanders, JEA 2010);
/// `benches/matching.rs` reproduces the experiment shape on the paper's
/// generators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Init {
    /// Start from the empty matching.
    None,
    /// Greedy maximal matching (the default).
    Greedy,
    /// Karp–Sipser degree-1 propagation.
    KarpSipser,
}

impl Init {
    /// All initializations, for sweeps.
    pub const ALL: [Init; 3] = [Init::None, Init::Greedy, Init::KarpSipser];

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            Init::None => "empty",
            Init::Greedy => "greedy",
            Init::KarpSipser => "karp-sipser",
        }
    }

    /// Produces the initial matching.
    pub fn run(self, g: &semimatch_graph::Bipartite) -> Matching {
        match self {
            Init::None => Matching::empty(g.n_left(), g.n_right()),
            Init::Greedy => greedy::greedy_init(g),
            Init::KarpSipser => greedy::karp_sipser(g),
        }
    }
}

/// Computes a maximum matching with an explicit initialization heuristic.
pub fn maximum_matching_with_init(
    g: &semimatch_graph::Bipartite,
    algo: Algorithm,
    init: Init,
) -> Matching {
    maximum_matching_with_init_in(g, algo, init, &mut SearchWorkspace::new())
}

/// [`maximum_matching_with_init`] on a caller-owned workspace.
pub fn maximum_matching_with_init_in(
    g: &semimatch_graph::Bipartite,
    algo: Algorithm,
    init: Init,
    ws: &mut SearchWorkspace,
) -> Matching {
    let start = init.run(g);
    match algo {
        Algorithm::Dfs => dfs::mc21_from_in(g, start, ws),
        Algorithm::Bfs => bfs::pfp_from_in(g, start, ws),
        Algorithm::HopcroftKarp => hopcroft_karp::hopcroft_karp_from_in(g, start, ws),
        Algorithm::PushRelabel => push_relabel::push_relabel_from_in(g, start, ws),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semimatch_graph::Bipartite;

    #[test]
    fn all_engines_agree_and_certify() {
        let g = Bipartite::from_edges(
            6,
            5,
            &[(0, 0), (0, 1), (1, 0), (2, 2), (2, 3), (3, 2), (4, 4), (5, 4), (5, 0)],
        )
        .unwrap();
        let mut sizes = Vec::new();
        for algo in Algorithm::ALL {
            let m = maximum_matching(&g, algo);
            cover::certify_maximum(&g, &m).unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
            sizes.push(m.cardinality());
        }
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "sizes {sizes:?}");
    }

    #[test]
    fn one_workspace_serves_interleaved_engines_and_graphs() {
        // Reusing a single workspace across engines and differently-sized
        // graphs must give exactly the cold-path results.
        let graphs = [
            Bipartite::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap(),
            Bipartite::from_edges(
                6,
                5,
                &[(0, 0), (0, 1), (1, 0), (2, 2), (2, 3), (3, 2), (4, 4), (5, 4), (5, 0)],
            )
            .unwrap(),
            Bipartite::from_edges(3, 1, &[(0, 0), (1, 0), (2, 0)]).unwrap(),
            Bipartite::from_edges(1, 4, &[(0, 3)]).unwrap(),
        ];
        let mut ws = SearchWorkspace::new();
        for _round in 0..3 {
            for g in &graphs {
                for algo in Algorithm::ALL {
                    let warm = maximum_matching_in(g, algo, &mut ws);
                    let cold = maximum_matching(g, algo);
                    warm.validate(g).unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
                    assert_eq!(warm, cold, "{} diverged under workspace reuse", algo.name());
                }
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }

    #[test]
    fn every_init_reaches_the_same_maximum() {
        let g = Bipartite::from_edges(
            6,
            5,
            &[(0, 0), (0, 1), (1, 0), (2, 2), (2, 3), (3, 2), (4, 4), (5, 4), (5, 0)],
        )
        .unwrap();
        let reference = maximum_matching(&g, Algorithm::HopcroftKarp).cardinality();
        for algo in Algorithm::ALL {
            for init in Init::ALL {
                let m = maximum_matching_with_init(&g, algo, init);
                cover::certify_maximum(&g, &m)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", algo.name(), init.name()));
                assert_eq!(m.cardinality(), reference, "{}/{}", algo.name(), init.name());
            }
        }
    }
}
