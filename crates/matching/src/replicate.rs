//! Explicit construction of the deadline-expanded graph `G_D`.
//!
//! §IV-A of the paper defines `G_D` as the instance graph with `D` copies
//! of every processor vertex, each inheriting the original neighborhood. A
//! matching of `G_D` covering all tasks exists iff the instance admits a
//! schedule of makespan ≤ D. The flow-based [`crate::capacitated`] module
//! solves the same question without the blowup; this module keeps the
//! literal construction for cross-validation and didactic value.

use semimatch_graph::Bipartite;

use crate::matching::{Matching, NONE};
use crate::workspace::SearchWorkspace;

/// Builds `G_D`: processor `u` becomes copies `u·D .. u·D + D - 1`.
///
/// # Panics
/// Panics if `d == 0`.
pub fn replicate(g: &Bipartite, d: u32) -> Bipartite {
    replicate_in(g, d, &mut SearchWorkspace::new())
}

/// [`replicate`] staging the expanded edge list in the workspace's edge
/// buffer, so a deadline search constructing `G_D` for growing `D` reuses
/// one allocation instead of building a fresh list per probe. (The returned
/// graph itself is a fresh CSR — it is the oracle's *instance*, not
/// scratch.)
pub fn replicate_in(g: &Bipartite, d: u32, ws: &mut SearchWorkspace) -> Bipartite {
    assert!(d > 0, "deadline must be positive");
    let edges = &mut ws.edges;
    edges.clear();
    edges.reserve(g.num_edges() * d as usize);
    for v in 0..g.n_left() {
        for &u in g.neighbors(v) {
            for c in 0..d {
                edges.push((v, u * d + c));
            }
        }
    }
    Bipartite::from_edges(g.n_left(), g.n_right() * d, edges)
        .expect("replication of a valid graph is valid")
}

/// Maps a matching of `G_D` back to a task→processor assignment of `g`.
///
/// Returns `(task_to_proc, loads)` with [`NONE`] for unmatched tasks.
pub fn project(g: &Bipartite, d: u32, m: &Matching) -> (Vec<u32>, Vec<u32>) {
    let mut task_to_proc = vec![NONE; g.n_left() as usize];
    let mut loads = vec![0u32; g.n_right() as usize];
    for (v, &copy) in m.mate_left.iter().enumerate() {
        if copy == NONE {
            continue;
        }
        let u = copy / d;
        task_to_proc[v] = u;
        loads[u as usize] += 1;
    }
    (task_to_proc, loads)
}

#[cfg(test)]
#[allow(clippy::type_complexity)] // edge-list test fixtures
mod tests {
    use super::*;
    use crate::capacitated::max_assignment;
    use crate::hopcroft_karp::hopcroft_karp;

    fn fig1() -> Bipartite {
        Bipartite::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap()
    }

    #[test]
    fn replication_structure() {
        let g = fig1();
        let g2 = replicate(&g, 2);
        assert_eq!(g2.n_left(), 2);
        assert_eq!(g2.n_right(), 4);
        assert_eq!(g2.num_edges(), 6);
        // Task 0's neighbors: copies of P0 (0,1) and P1 (2,3).
        assert_eq!(g2.neighbors(0), &[0, 1, 2, 3]);
        assert_eq!(g2.neighbors(1), &[0, 1]);
        g2.validate().unwrap();
    }

    #[test]
    fn projection_computes_loads() {
        let g = Bipartite::from_edges(3, 1, &[(0, 0), (1, 0), (2, 0)]).unwrap();
        let g3 = replicate(&g, 3);
        let m = hopcroft_karp(&g3);
        assert!(m.is_left_perfect());
        let (assign, loads) = project(&g, 3, &m);
        assert!(assign.iter().all(|&p| p == 0));
        assert_eq!(loads, vec![3]);
    }

    #[test]
    fn replication_agrees_with_capacitated_flow() {
        // The two formulations must agree on the covered-task count for
        // every deadline.
        let cases: Vec<(u32, u32, Vec<(u32, u32)>)> = vec![
            (2, 2, vec![(0, 0), (0, 1), (1, 0)]),
            (5, 2, vec![(0, 0), (1, 0), (2, 0), (3, 1), (4, 1)]),
            (4, 1, vec![(0, 0), (1, 0), (2, 0), (3, 0)]),
            (6, 3, vec![(0, 0), (1, 0), (2, 1), (3, 1), (4, 2), (5, 2), (0, 2)]),
        ];
        for (n1, n2, edges) in cases {
            let g = Bipartite::from_edges(n1, n2, &edges).unwrap();
            for d in 1..=4 {
                let via_replication = hopcroft_karp(&replicate(&g, d)).cardinality();
                let via_flow = max_assignment(&g, d).cardinality();
                assert_eq!(via_replication, via_flow, "edges {edges:?}, D={d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_panics() {
        replicate(&fig1(), 0);
    }
}
