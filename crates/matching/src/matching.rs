//! The [`Matching`] type shared by every algorithm in this crate.

use semimatch_graph::Bipartite;

/// Sentinel for "unmatched".
pub const NONE: u32 = u32::MAX;

/// A (partial) matching in a bipartite graph.
///
/// `mate_left[v]` is the right vertex matched to left vertex `v` (or
/// [`NONE`]); `mate_right[u]` mirrors it. All algorithms maintain the mirror
/// invariant; [`Matching::validate`] checks it against a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// Mate of each left vertex, or [`NONE`].
    pub mate_left: Vec<u32>,
    /// Mate of each right vertex, or [`NONE`].
    pub mate_right: Vec<u32>,
}

impl Matching {
    /// An empty matching for a graph with the given vertex counts.
    pub fn empty(n_left: u32, n_right: u32) -> Self {
        Matching {
            mate_left: vec![NONE; n_left as usize],
            mate_right: vec![NONE; n_right as usize],
        }
    }

    /// Number of matched pairs.
    pub fn cardinality(&self) -> usize {
        self.mate_left.iter().filter(|&&m| m != NONE).count()
    }

    /// True when every left vertex is matched (a perfect matching on `V1`,
    /// i.e. a feasible semi-matching with loads ≤ 1).
    pub fn is_left_perfect(&self) -> bool {
        self.mate_left.iter().all(|&m| m != NONE)
    }

    /// Matches `v` and `u`, breaking any previous matches of either side.
    #[inline]
    pub fn couple(&mut self, v: u32, u: u32) {
        let old_u = self.mate_left[v as usize];
        if old_u != NONE {
            self.mate_right[old_u as usize] = NONE;
        }
        let old_v = self.mate_right[u as usize];
        if old_v != NONE {
            self.mate_left[old_v as usize] = NONE;
        }
        self.mate_left[v as usize] = u;
        self.mate_right[u as usize] = v;
    }

    /// Checks internal consistency and that all matched pairs are edges of `g`.
    pub fn validate(&self, g: &Bipartite) -> Result<(), String> {
        if self.mate_left.len() != g.n_left() as usize
            || self.mate_right.len() != g.n_right() as usize
        {
            return Err("mate array lengths do not match the graph".into());
        }
        for (v, &u) in self.mate_left.iter().enumerate() {
            if u == NONE {
                continue;
            }
            if u >= g.n_right() {
                return Err(format!("mate_left[{v}] = {u} out of range"));
            }
            if self.mate_right[u as usize] != v as u32 {
                return Err(format!("mate arrays disagree on pair ({v}, {u})"));
            }
            if g.neighbors(v as u32).binary_search(&u).is_err() {
                return Err(format!("matched pair ({v}, {u}) is not an edge"));
            }
        }
        for (u, &v) in self.mate_right.iter().enumerate() {
            if v != NONE && self.mate_left[v as usize] != u as u32 {
                return Err(format!("mate arrays disagree on pair ({v}, {u})"));
            }
        }
        Ok(())
    }

    /// Unmatched left vertices.
    pub fn exposed_left(&self) -> impl Iterator<Item = u32> + '_ {
        self.mate_left.iter().enumerate().filter(|&(_, &m)| m == NONE).map(|(v, _)| v as u32)
    }

    /// Unmatched right vertices.
    pub fn exposed_right(&self) -> impl Iterator<Item = u32> + '_ {
        self.mate_right.iter().enumerate().filter(|&(_, &m)| m == NONE).map(|(u, _)| u as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matching() {
        let m = Matching::empty(3, 2);
        assert_eq!(m.cardinality(), 0);
        assert!(!m.is_left_perfect());
        assert_eq!(m.exposed_left().count(), 3);
        assert_eq!(m.exposed_right().count(), 2);
    }

    #[test]
    fn couple_breaks_old_pairs() {
        let mut m = Matching::empty(2, 2);
        m.couple(0, 0);
        m.couple(1, 1);
        assert_eq!(m.cardinality(), 2);
        // Steal 0's mate for 1: 1-0, leaving 0 and right 1 exposed.
        m.couple(1, 0);
        assert_eq!(m.mate_left[0], NONE);
        assert_eq!(m.mate_right[1], NONE);
        assert_eq!(m.mate_left[1], 0);
        assert_eq!(m.cardinality(), 1);
    }

    #[test]
    fn validate_catches_non_edges() {
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let mut m = Matching::empty(2, 2);
        m.couple(0, 1); // not an edge
        assert!(m.validate(&g).is_err());
        let mut m = Matching::empty(2, 2);
        m.couple(0, 0);
        assert!(m.validate(&g).is_ok());
    }

    #[test]
    fn validate_catches_mirror_violation() {
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let mut m = Matching::empty(2, 2);
        m.mate_left[0] = 0; // mate_right not updated
        assert!(m.validate(&g).is_err());
    }

    #[test]
    fn validate_catches_wrong_lengths() {
        let g = Bipartite::from_edges(2, 2, &[(0, 0)]).unwrap();
        let m = Matching::empty(3, 2);
        assert!(m.validate(&g).is_err());
    }
}
