//! Cheap initialization heuristics: simple greedy and Karp–Sipser.
//!
//! Both produce maximal (not maximum) matchings that the exact algorithms
//! use as jump starts, following the practice of the MatchMaker suite
//! (Duff, Kaya, Uçar 2011; Langguth, Manne, Sanders 2010).

use semimatch_graph::Bipartite;

use crate::matching::{Matching, NONE};

/// Greedy maximal matching: scan left vertices in order and match each to
/// its first unmatched neighbor. Runs in `O(|E|)`.
pub fn greedy_init(g: &Bipartite) -> Matching {
    let mut m = Matching::empty(g.n_left(), g.n_right());
    for v in 0..g.n_left() {
        for &u in g.neighbors(v) {
            if m.mate_right[u as usize] == NONE {
                m.mate_left[v as usize] = u;
                m.mate_right[u as usize] = v;
                break;
            }
        }
    }
    m
}

/// Karp–Sipser initialization.
///
/// Repeatedly matches degree-1 vertices first (their edge belongs to some
/// maximum matching), falling back to an arbitrary edge when no degree-1
/// vertex remains. This simplified variant tracks residual degrees on both
/// sides and processes a queue of degree-1 vertices; it runs in `O(|E|)`
/// amortized for the degree-1 phase plus a greedy sweep.
pub fn karp_sipser(g: &Bipartite) -> Matching {
    let n1 = g.n_left() as usize;
    let n2 = g.n_right() as usize;
    let mut m = Matching::empty(g.n_left(), g.n_right());
    // Residual degrees: number of still-unmatched neighbors.
    let mut deg_l: Vec<u32> = (0..g.n_left()).map(|v| g.deg_left(v)).collect();
    let mut deg_r: Vec<u32> = (0..g.n_right()).map(|u| g.deg_right(u)).collect();
    // Queue of (vertex, side) with residual degree exactly 1. side: false=left.
    let mut queue: Vec<(u32, bool)> = Vec::new();
    for v in 0..n1 {
        if deg_l[v] == 1 {
            queue.push((v as u32, false));
        }
    }
    for u in 0..n2 {
        if deg_r[u] == 1 {
            queue.push((u as u32, true));
        }
    }

    let mut head = 0;
    let mut matched_l = vec![false; n1];
    let mut matched_r = vec![false; n2];

    // Helper closures are avoided (borrow juggling); inline the two sides.
    while head < queue.len() {
        let (x, right_side) = queue[head];
        head += 1;
        if right_side {
            let u = x as usize;
            if matched_r[u] || deg_r[u] == 0 {
                continue;
            }
            // Find the unique unmatched neighbor.
            let v = match g.rneighbors(x).iter().find(|&&v| !matched_l[v as usize]) {
                Some(&v) => v,
                None => continue,
            };
            m.couple(v, x);
            matched_l[v as usize] = true;
            matched_r[u] = true;
            // Neighbors of v lose one residual degree.
            for &w in g.neighbors(v) {
                if !matched_r[w as usize] {
                    deg_r[w as usize] = deg_r[w as usize].saturating_sub(1);
                    if deg_r[w as usize] == 1 {
                        queue.push((w, true));
                    }
                }
            }
        } else {
            let v = x as usize;
            if matched_l[v] || deg_l[v] == 0 {
                continue;
            }
            let u = match g.neighbors(x).iter().find(|&&u| !matched_r[u as usize]) {
                Some(&u) => u,
                None => continue,
            };
            m.couple(x, u);
            matched_l[v] = true;
            matched_r[u as usize] = true;
            for &w in g.rneighbors(u) {
                if !matched_l[w as usize] {
                    deg_l[w as usize] = deg_l[w as usize].saturating_sub(1);
                    if deg_l[w as usize] == 1 {
                        queue.push((w, false));
                    }
                }
            }
        }
        // Newly-created degree-1 vertices were pushed; continue draining.
    }

    // Phase 2: greedy sweep over what remains.
    for v in 0..g.n_left() {
        if m.mate_left[v as usize] != NONE {
            continue;
        }
        for &u in g.neighbors(v) {
            if m.mate_right[u as usize] == NONE {
                m.couple(v, u);
                break;
            }
        }
    }
    m
}

/// True when `m` is maximal in `g`: no edge joins two exposed vertices.
pub fn is_maximal(g: &Bipartite, m: &Matching) -> bool {
    for v in 0..g.n_left() {
        if m.mate_left[v as usize] != NONE {
            continue;
        }
        for &u in g.neighbors(v) {
            if m.mate_right[u as usize] == NONE {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Bipartite {
        // L0-R0, L1-R0, L1-R1, L2-R1 : a path; maximum matching = 2.
        Bipartite::from_edges(3, 2, &[(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap()
    }

    #[test]
    fn greedy_is_maximal_and_valid() {
        let g = path_graph();
        let m = greedy_init(&g);
        m.validate(&g).unwrap();
        assert!(is_maximal(&g, &m));
        assert!(m.cardinality() >= 1); // maximal matching ≥ half of maximum
    }

    #[test]
    fn karp_sipser_finds_maximum_on_path() {
        // Degree-1 rule is optimal on paths/trees: KS must find 2 here.
        let g = path_graph();
        let m = karp_sipser(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.cardinality(), 2);
        assert!(is_maximal(&g, &m));
    }

    #[test]
    fn karp_sipser_on_perfect_matching_chain() {
        // HiLo-like chain where greedy can err but degree-1 propagation wins:
        // L0: {R0}; L1: {R0, R1}; L2: {R1, R2}; L3: {R2, R3}.
        let g =
            Bipartite::from_edges(4, 4, &[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2), (3, 3)])
                .unwrap();
        let m = karp_sipser(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.cardinality(), 4, "degree-1 propagation yields the perfect matching");
    }

    #[test]
    fn empty_graph() {
        let g = Bipartite::from_edges(3, 3, &[]).unwrap();
        assert_eq!(greedy_init(&g).cardinality(), 0);
        assert_eq!(karp_sipser(&g).cardinality(), 0);
    }

    #[test]
    fn star_graph_matches_once() {
        // One left vertex adjacent to everything.
        let g = Bipartite::from_edges(1, 5, &[(0, 0), (0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(greedy_init(&g).cardinality(), 1);
        assert_eq!(karp_sipser(&g).cardinality(), 1);
    }

    #[test]
    fn maximality_checker_detects_non_maximal() {
        let g = path_graph();
        let m = Matching::empty(3, 2);
        assert!(!is_maximal(&g, &m));
    }
}
