//! Hopcroft–Karp maximum matching in `O(√|V| · |E|)`.
//!
//! Phases of one global BFS (building level sets from all exposed left
//! vertices) followed by DFS extraction of a maximal set of vertex-disjoint
//! shortest augmenting paths.

use semimatch_graph::Bipartite;

use crate::greedy::greedy_init;
use crate::matching::{Matching, NONE};
use crate::workspace::SearchWorkspace;

const INF: u32 = u32::MAX;

/// Maximum matching by Hopcroft–Karp, starting from a greedy matching.
pub fn hopcroft_karp(g: &Bipartite) -> Matching {
    hopcroft_karp_from(g, greedy_init(g))
}

/// Maximum matching by Hopcroft–Karp from a caller-supplied matching.
pub fn hopcroft_karp_from(g: &Bipartite, m: Matching) -> Matching {
    hopcroft_karp_from_in(g, m, &mut SearchWorkspace::new())
}

/// [`hopcroft_karp_from`] drawing all scratch (levels, BFS queue, phase-DFS
/// cursors and stack) from a reusable workspace. Allocation-free once `ws`
/// has seen the graph's dimensions.
pub fn hopcroft_karp_from_in(g: &Bipartite, mut m: Matching, ws: &mut SearchWorkspace) -> Matching {
    let n1 = g.n_left() as usize;
    ws.reserve(g.n_left(), g.n_right());
    // dist: BFS levels per left vertex; cursor: DFS iterator state per left
    // vertex; queue: BFS frontier; aux: the phase-DFS stack of left vertices.

    loop {
        // ---- BFS phase: layer left vertices by alternating distance. ----
        ws.queue.clear();
        let mut found_free = false;
        for v in 0..n1 {
            if m.mate_left[v] == NONE {
                ws.dist[v] = 0;
                ws.queue.push(v as u32);
            } else {
                ws.dist[v] = INF;
            }
        }
        let mut head = 0;
        let mut limit = INF; // depth of the shallowest augmenting path
        while head < ws.queue.len() {
            let v = ws.queue[head];
            head += 1;
            if ws.dist[v as usize] >= limit {
                break;
            }
            for &u in g.neighbors(v) {
                let w = m.mate_right[u as usize];
                if w == NONE {
                    // Shortest augmenting path depth reached.
                    if limit == INF {
                        limit = ws.dist[v as usize] + 1;
                    }
                    found_free = true;
                } else if ws.dist[w as usize] == INF {
                    ws.dist[w as usize] = ws.dist[v as usize] + 1;
                    ws.queue.push(w);
                }
            }
        }
        if !found_free {
            break; // no augmenting path: matching is maximum
        }

        // ---- DFS phase: vertex-disjoint shortest augmenting paths. ----
        for v in 0..n1 {
            ws.cursor[v] = g.edge_range(v as u32).start;
        }
        for v0 in 0..n1 {
            if m.mate_left[v0] != NONE {
                continue;
            }
            ws.aux.clear();
            ws.aux.push(v0 as u32);
            let mut free_u = NONE;
            while let Some(&v) = ws.aux.last() {
                let range_end = g.edge_range(v).end;
                let mut descended = false;
                while ws.cursor[v as usize] < range_end {
                    let u = g.edge_right(ws.cursor[v as usize]);
                    ws.cursor[v as usize] += 1;
                    let w = m.mate_right[u as usize];
                    if w == NONE {
                        free_u = u;
                        break;
                    }
                    // Follow only level-respecting arcs.
                    if ws.dist[w as usize] == ws.dist[v as usize] + 1 {
                        ws.aux.push(w);
                        descended = true;
                        break;
                    }
                }
                if free_u != NONE {
                    break;
                }
                if !descended {
                    // Dead end: exclude v from this phase entirely.
                    ws.dist[v as usize] = INF;
                    ws.aux.pop();
                }
            }
            if free_u != NONE {
                let mut u = free_u;
                while let Some(v) = ws.aux.pop() {
                    let prev_u = m.mate_left[v as usize];
                    m.mate_left[v as usize] = u;
                    m.mate_right[u as usize] = v;
                    // Path vertices may not be reused within the phase.
                    ws.dist[v as usize] = INF;
                    if prev_u == NONE {
                        break;
                    }
                    u = prev_u;
                }
            }
        }
    }
    m
}

#[cfg(test)]
#[allow(clippy::type_complexity)] // edge-list test fixtures
mod tests {
    use super::*;
    use crate::dfs::mc21;

    #[test]
    fn perfect_matching_on_cycle() {
        // Even cycle L0-R0-L1-R1-...: perfect matching exists.
        let n = 32u32;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, i));
            edges.push((i, (i + 1) % n));
        }
        let g = Bipartite::from_edges(n, n, &edges).unwrap();
        let m = hopcroft_karp(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.cardinality(), n as usize);
    }

    #[test]
    fn agrees_with_dfs_on_assorted_graphs() {
        let cases: Vec<(u32, u32, Vec<(u32, u32)>)> = vec![
            (2, 2, vec![(0, 0), (0, 1), (1, 0)]),
            (5, 4, vec![(0, 0), (1, 0), (2, 0), (3, 1), (3, 2), (4, 3), (0, 3)]),
            (4, 4, vec![(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3), (3, 3), (3, 0)]),
            (6, 3, vec![(0, 0), (1, 0), (2, 1), (3, 1), (4, 2), (5, 2)]),
        ];
        for (n1, n2, edges) in cases {
            let g = Bipartite::from_edges(n1, n2, &edges).unwrap();
            let a = hopcroft_karp(&g);
            let b = mc21(&g);
            a.validate(&g).unwrap();
            assert_eq!(a.cardinality(), b.cardinality(), "edges {edges:?}");
        }
    }

    #[test]
    fn deficient_side_handled() {
        let g = Bipartite::from_edges(3, 1, &[(0, 0), (1, 0), (2, 0)]).unwrap();
        let m = hopcroft_karp(&g);
        assert_eq!(m.cardinality(), 1);
        m.validate(&g).unwrap();
    }

    #[test]
    fn already_maximum_input_is_stable() {
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let mut init = Matching::empty(2, 2);
        init.couple(0, 0);
        init.couple(1, 1);
        let m = hopcroft_karp_from(&g, init.clone());
        assert_eq!(m, init);
    }

    #[test]
    fn empty_graph() {
        let g = Bipartite::from_edges(0, 5, &[]).unwrap();
        assert_eq!(hopcroft_karp(&g).cardinality(), 0);
    }
}
