//! Reusable scratch state for the augmenting-path engines.
//!
//! Every matching engine in this crate is a phase-structured search over the
//! same bipartite substrate: BFS layers, DFS stacks, per-vertex cursors and
//! stamped visited marks. Historically each call re-allocated that scratch;
//! a [`SearchWorkspace`] allocates it once and resets it in `O(active)`
//! between runs, which is what makes repeated solves (deadline searches,
//! bench sweeps, serving traffic) cheap.
//!
//! The workspace is engine-agnostic: [`crate::bfs::pfp_from_in`],
//! [`crate::dfs::mc21_from_in`],
//! [`crate::hopcroft_karp::hopcroft_karp_from_in`],
//! [`crate::push_relabel::push_relabel_from_in`] and
//! [`crate::capacitated::max_assignment_in`] all draw from the same arrays,
//! so one workspace serves an arbitrary interleaving of engines.
//!
//! ```
//! use semimatch_graph::Bipartite;
//! use semimatch_matching::{maximum_matching_in, Algorithm, SearchWorkspace};
//!
//! let mut ws = SearchWorkspace::new();
//! for shift in 0..4u32 {
//!     let g = Bipartite::from_edges(2, 2, &[(0, shift % 2), (1, 0)]).unwrap();
//!     // Warm path: no scratch allocation after the first iteration.
//!     let m = maximum_matching_in(&g, Algorithm::HopcroftKarp, &mut ws);
//!     assert!(m.cardinality() >= 1);
//! }
//! ```

use crate::flow::FlowNetwork;

/// Reusable scratch arrays for the augmenting-path engines.
///
/// All vectors grow monotonically (never shrink), so a workspace that has
/// seen the largest instance of a sweep never allocates again. The stamped
/// `visited` array makes per-search resets `O(1)`; the remaining arrays are
/// rewritten by each engine over exactly the vertices it touches.
#[derive(Clone, Debug, Default)]
pub struct SearchWorkspace {
    /// Stamped visited marks, indexed by right vertex. `visited[u] == stamp`
    /// means "reached in the current search"; anything else is stale.
    pub(crate) visited: Vec<u32>,
    /// Current stamp. Monotonically increasing; `u32::MAX` is reserved as
    /// the "never visited" sentinel that fresh slots are filled with.
    stamp: u32,
    /// BFS level / alternating distance, indexed by left vertex.
    pub(crate) dist: Vec<u32>,
    /// Predecessor pointer, indexed by right vertex.
    pub(crate) pred: Vec<u32>,
    /// Per-left-vertex neighbor cursor (Hopcroft–Karp phase DFS).
    pub(crate) cursor: Vec<u32>,
    /// Persistent lookahead cursor per left vertex (MC21).
    pub(crate) lookahead: Vec<u32>,
    /// Push-relabel labels `ψ`, indexed by right vertex.
    pub(crate) labels: Vec<u32>,
    /// Primary traversal queue (BFS frontier, FIFO of active vertices).
    pub(crate) queue: Vec<u32>,
    /// Secondary queue (global-relabel BFS, Hopcroft–Karp phase stack).
    pub(crate) aux: Vec<u32>,
    /// Explicit DFS stack of `(left vertex, neighbor cursor)`.
    pub(crate) stack: Vec<(u32, u32)>,
    /// Residual-network arena for the capacitated / flow formulations.
    /// The network owns its own Dinic scratch, so rebuilding it here is
    /// allocation-free once warm.
    pub(crate) flow: FlowNetwork,
    /// Arc ids of the task→processor arcs of the capacitated network.
    pub(crate) edge_arcs: Vec<u32>,
    /// Arc ids of the processor→sink arcs of the capacitated network, in
    /// active-processor order — the handles the warm capacity probes
    /// retarget between solves.
    pub(crate) proc_arcs: Vec<u32>,
    /// Edge-list buffer for graph constructions (`G_D` replication).
    pub(crate) edges: Vec<(u32, u32)>,
    /// Per-right-vertex BFS level (semi-matching phase descent).
    pub(crate) rdist: Vec<u32>,
    /// Intrusive assigned-task list heads, indexed by right vertex.
    pub(crate) list_head: Vec<u32>,
    /// Intrusive assigned-task list links, indexed by left vertex.
    pub(crate) list_next: Vec<u32>,
    /// Reverse links of [`Self::list_next`], for `O(1)` removal.
    pub(crate) list_prev: Vec<u32>,
}

impl SearchWorkspace {
    /// An empty workspace; arrays grow on first use.
    pub fn new() -> Self {
        SearchWorkspace::default()
    }

    /// A workspace pre-sized for graphs with `n_left` × `n_right` vertices
    /// (avoids growth reallocation on the first solve).
    pub fn with_capacity(n_left: u32, n_right: u32) -> Self {
        let mut ws = SearchWorkspace::new();
        ws.reserve(n_left, n_right);
        ws
    }

    /// Grows every per-vertex array to cover a `n_left` × `n_right` graph.
    ///
    /// Idempotent and monotone: called on every `*_in` entry point, a no-op
    /// (no allocation, no writes) once the workspace has seen the sizes.
    pub fn reserve(&mut self, n_left: u32, n_right: u32) {
        let n1 = n_left as usize;
        let n2 = n_right as usize;
        if self.visited.len() < n2 {
            // Fresh slots carry the sentinel: no stamp ever equals it.
            self.visited.resize(n2, u32::MAX);
        }
        grow(&mut self.dist, n1);
        grow(&mut self.pred, n2);
        grow(&mut self.cursor, n1);
        grow(&mut self.lookahead, n1);
        grow(&mut self.labels, n2);
        grow(&mut self.rdist, n2);
        grow(&mut self.list_head, n2);
        grow(&mut self.list_next, n1);
        grow(&mut self.list_prev, n1);
    }

    /// Pre-sizes the residual-network arena (vertices, directed arcs
    /// including residual twins) and the buffer recording the
    /// `n_edge_arcs` task→processor arc ids, so the first capacitated
    /// solve performs no growth reallocation. The capacitated formulation
    /// of a `n1 × n2` graph with `m` edges uses `n1 + n2 + 2` vertices,
    /// `2·(n1 + m + n2)` arcs and records `m` edge arcs.
    pub fn reserve_flow(&mut self, n_vertices: usize, n_arcs: usize, n_edge_arcs: usize) {
        self.flow.reserve(n_vertices, n_arcs);
        self.edge_arcs.reserve(n_edge_arcs.saturating_sub(self.edge_arcs.len()));
    }

    /// Starts a new search: returns a fresh stamp distinct from every mark
    /// currently in `visited`. `O(1)` except on stamp overflow (every
    /// `u32::MAX - 1` searches), where `visited` is wiped once.
    pub(crate) fn next_stamp(&mut self) -> u32 {
        if self.stamp == u32::MAX - 1 {
            // Overflow: wipe to the sentinel and restart the counter.
            self.visited.iter_mut().for_each(|m| *m = u32::MAX);
            self.stamp = 0;
        } else {
            self.stamp += 1;
        }
        self.stamp
    }

    /// The residual-network arena, cleared for an `n`-vertex build.
    ///
    /// Returned together with the arc-id buffer so callers can record arc
    /// ids while constructing (split borrows of one workspace).
    pub(crate) fn flow_arena(&mut self, n: usize) -> (&mut FlowNetwork, &mut Vec<u32>) {
        self.flow.clear(n);
        self.edge_arcs.clear();
        (&mut self.flow, &mut self.edge_arcs)
    }

    /// [`Self::flow_arena`] for the warm capacity probes: additionally
    /// clears and returns the processor→sink arc-id buffer.
    pub(crate) fn probe_arena(
        &mut self,
        n: usize,
    ) -> (&mut FlowNetwork, &mut Vec<u32>, &mut Vec<u32>) {
        self.flow.clear(n);
        self.edge_arcs.clear();
        self.proc_arcs.clear();
        (&mut self.flow, &mut self.edge_arcs, &mut self.proc_arcs)
    }

    /// Augmenting paths pushed by this workspace's resident flow network
    /// since construction (monotone; meter a region by
    /// snapshot-and-subtract). The probe/augmentation counter behind the
    /// fast-exact bench reports.
    pub fn flow_augmentations(&self) -> u64 {
        self.flow.augmentations()
    }
}

/// Grows `v` to `n` slots without initializing a meaning (engines rewrite
/// the slots they read); never shrinks, so capacity is sticky.
fn grow(v: &mut Vec<u32>, n: usize) {
    if v.len() < n {
        v.resize(n, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_is_monotone_and_idempotent() {
        let mut ws = SearchWorkspace::new();
        ws.reserve(4, 7);
        assert_eq!(ws.visited.len(), 7);
        assert_eq!(ws.dist.len(), 4);
        ws.reserve(2, 3); // smaller: nothing shrinks
        assert_eq!(ws.visited.len(), 7);
        assert_eq!(ws.dist.len(), 4);
        let ptr = ws.visited.as_ptr();
        ws.reserve(4, 7); // same: no reallocation
        assert_eq!(ws.visited.as_ptr(), ptr);
    }

    #[test]
    fn stamps_are_distinct_across_searches() {
        let mut ws = SearchWorkspace::with_capacity(2, 2);
        let a = ws.next_stamp();
        let b = ws.next_stamp();
        assert_ne!(a, b);
        assert_ne!(a, u32::MAX);
        assert_ne!(b, u32::MAX);
    }

    #[test]
    fn stamp_overflow_wipes_visited() {
        let mut ws = SearchWorkspace::with_capacity(1, 3);
        ws.stamp = u32::MAX - 2;
        let s = ws.next_stamp();
        ws.visited[0] = s;
        let s2 = ws.next_stamp(); // hits the overflow path
        assert_eq!(s2, 0);
        assert!(ws.visited.iter().all(|&m| m == u32::MAX), "marks wiped on overflow");
    }

    #[test]
    fn fresh_slots_never_match_a_stamp() {
        let mut ws = SearchWorkspace::new();
        let s = {
            ws.reserve(1, 1);
            ws.next_stamp()
        };
        ws.reserve(1, 64); // grow after stamping
        assert!(ws.visited[1..].iter().all(|&m| m != s));
    }
}
