//! A small generic max-flow solver (Dinic's algorithm).
//!
//! The exact algorithm for `SINGLEPROC-UNIT` needs maximum matchings in the
//! deadline-expanded graph `G_D`; rather than materializing `D` copies of
//! every processor we solve the equivalent flow problem with processor
//! capacities (see [`crate::capacitated`]). The solver is deliberately
//! general: unit tests exercise it on classical flow networks as well.

/// Adjacency-list flow network with residual arcs.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    /// Head vertex of each arc. Arc `2k+1` is the residual twin of arc `2k`.
    head: Vec<u32>,
    /// Residual capacity of each arc.
    cap: Vec<u64>,
    /// Per-vertex arc lists (indices into `head`/`cap`).
    adj: Vec<Vec<u32>>,
}

impl FlowNetwork {
    /// Creates a network with `n` vertices and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork { head: Vec::new(), cap: Vec::new(), adj: vec![Vec::new(); n] }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed arc `from → to` with the given capacity and returns
    /// its arc id (the reverse residual arc is created automatically).
    pub fn add_arc(&mut self, from: u32, to: u32, capacity: u64) -> u32 {
        let id = self.head.len() as u32;
        self.head.push(to);
        self.cap.push(capacity);
        self.head.push(from);
        self.cap.push(0);
        self.adj[from as usize].push(id);
        self.adj[to as usize].push(id + 1);
        id
    }

    /// Flow currently routed through arc `id` (capacity of its twin).
    pub fn flow(&self, id: u32) -> u64 {
        self.cap[id as usize ^ 1]
    }

    /// Residual capacity of arc `id`.
    pub fn residual(&self, id: u32) -> u64 {
        self.cap[id as usize]
    }

    /// Computes the maximum `source → sink` flow with Dinic's algorithm.
    pub fn max_flow(&mut self, source: u32, sink: u32) -> u64 {
        assert_ne!(source, sink, "source and sink must differ");
        let n = self.adj.len();
        let mut level: Vec<u32> = vec![u32::MAX; n];
        let mut iter: Vec<u32> = vec![0; n];
        let mut queue: Vec<u32> = Vec::with_capacity(n);
        let mut total = 0u64;
        loop {
            // BFS: layer the residual graph.
            level.iter_mut().for_each(|l| *l = u32::MAX);
            level[source as usize] = 0;
            queue.clear();
            queue.push(source);
            let mut head = 0;
            while head < queue.len() {
                let v = queue[head];
                head += 1;
                for &a in &self.adj[v as usize] {
                    let to = self.head[a as usize];
                    if self.cap[a as usize] > 0 && level[to as usize] == u32::MAX {
                        level[to as usize] = level[v as usize] + 1;
                        queue.push(to);
                    }
                }
            }
            if level[sink as usize] == u32::MAX {
                return total;
            }
            // Blocking flow via iterative DFS with current-arc pointers.
            iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs_augment(source, sink, u64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    /// One DFS from `source`: finds a single augmenting path in the level
    /// graph and pushes its bottleneck. Iterative to avoid deep recursion.
    fn dfs_augment(
        &mut self,
        source: u32,
        sink: u32,
        limit: u64,
        level: &[u32],
        iter: &mut [u32],
    ) -> u64 {
        // Stack of (vertex, arc taken to reach it); source has no entry arc.
        let mut path: Vec<u32> = Vec::new(); // arcs on the current path
        let mut v = source;
        loop {
            if v == sink {
                // Bottleneck and augment.
                let mut bottleneck = limit;
                for &a in &path {
                    bottleneck = bottleneck.min(self.cap[a as usize]);
                }
                for &a in &path {
                    self.cap[a as usize] -= bottleneck;
                    self.cap[(a ^ 1) as usize] += bottleneck;
                }
                return bottleneck;
            }
            let arcs = &self.adj[v as usize];
            let mut advanced = false;
            while (iter[v as usize] as usize) < arcs.len() {
                let a = arcs[iter[v as usize] as usize];
                let to = self.head[a as usize];
                if self.cap[a as usize] > 0
                    && level[to as usize] == level[v as usize].wrapping_add(1)
                {
                    path.push(a);
                    v = to;
                    advanced = true;
                    break;
                }
                iter[v as usize] += 1;
            }
            if !advanced {
                if v == source {
                    return 0; // level graph exhausted
                }
                // Retreat: the vertex is dead for this phase.
                let a = path.pop().expect("non-source vertex has an entry arc");
                let prev = self.head[(a ^ 1) as usize];
                iter[prev as usize] += 1;
                v = prev;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_arc(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
        assert_eq!(net.flow(a), 7);
        assert_eq!(net.residual(a), 0);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two routes with a cross arc.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 10);
        net.add_arc(0, 2, 10);
        net.add_arc(1, 2, 1);
        net.add_arc(1, 3, 8);
        net.add_arc(2, 3, 10);
        assert_eq!(net.max_flow(0, 3), 18);
    }

    #[test]
    fn needs_residual_arcs() {
        // The textbook example where a greedy route must be partially undone.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1);
        net.add_arc(0, 2, 1);
        net.add_arc(1, 2, 1);
        net.add_arc(1, 3, 1);
        net.add_arc(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn disconnected_sink() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 5);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn bipartite_matching_as_flow() {
        // 3 tasks, 2 processors, capacities 1: maximum matching is 2.
        // Nodes: s=0, tasks 1..=3, procs 4..=5, t=6.
        let mut net = FlowNetwork::new(7);
        for v in 1..=3 {
            net.add_arc(0, v, 1);
        }
        net.add_arc(1, 4, 1);
        net.add_arc(2, 4, 1);
        net.add_arc(3, 5, 1);
        net.add_arc(4, 6, 1);
        net.add_arc(5, 6, 1);
        assert_eq!(net.max_flow(0, 6), 2);
    }

    #[test]
    fn capacities_accumulate_on_sink_arcs() {
        // 3 tasks, 1 processor with capacity 2 → flow 2.
        let mut net = FlowNetwork::new(6);
        for v in 1..=3 {
            net.add_arc(0, v, 1);
            net.add_arc(v, 4, 1);
        }
        net.add_arc(4, 5, 2);
        assert_eq!(net.max_flow(0, 5), 2);
    }

    #[test]
    fn flow_conservation() {
        let mut net = FlowNetwork::new(5);
        let arcs = [
            net.add_arc(0, 1, 4),
            net.add_arc(0, 2, 2),
            net.add_arc(1, 2, 2),
            net.add_arc(1, 3, 1),
            net.add_arc(2, 3, 5),
            net.add_arc(3, 4, 6),
        ];
        // Vertex 1 can forward at most 3 units (1→2 cap 2, 1→3 cap 1), so
        // the maximum is 3 + 2 = 5.
        let f = net.max_flow(0, 4);
        assert_eq!(f, 5);
        // Conservation at vertex 2: inflow == outflow.
        let inflow = net.flow(arcs[1]) + net.flow(arcs[2]);
        let outflow = net.flow(arcs[4]);
        assert_eq!(inflow, outflow);
    }
}
