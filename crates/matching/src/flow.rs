//! A small generic max-flow solver (Dinic's algorithm).
//!
//! The exact algorithm for `SINGLEPROC-UNIT` needs maximum matchings in the
//! deadline-expanded graph `G_D`; rather than materializing `D` copies of
//! every processor we solve the equivalent flow problem with processor
//! capacities (see [`crate::capacitated`]). The solver is deliberately
//! general: unit tests exercise it on classical flow networks as well.
//!
//! The residual graph is stored in CSR form (matching
//! `semimatch_graph::Bipartite`): arcs append to flat `head`/`cap` arrays
//! and the per-vertex arc lists are two flat index arrays rebuilt lazily
//! before a solve. The Dinic scratch (levels, current-arc pointers, BFS
//! queue, DFS path) lives inside the network, so a [`FlowNetwork`] that is
//! [`clear`](FlowNetwork::clear)ed and refilled — the
//! [`crate::SearchWorkspace`] arena pattern — performs repeated max-flows
//! with no per-call allocation once warm.

/// CSR flow network with residual arcs and resident Dinic scratch.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    /// Number of vertices.
    n: usize,
    /// Head vertex of each arc. Arc `2k+1` is the residual twin of arc `2k`,
    /// so the tail of arc `a` is `head[a ^ 1]`.
    head: Vec<u32>,
    /// Residual capacity of each arc.
    cap: Vec<u64>,
    /// CSR offsets: the arcs leaving vertex `v` are
    /// `arc_order[arc_start[v] .. arc_start[v + 1]]`. Rebuilt lazily.
    arc_start: Vec<u32>,
    /// Arc ids grouped by tail vertex (CSR payload).
    arc_order: Vec<u32>,
    /// Whether `arc_start`/`arc_order` reflect the current arc set.
    csr_valid: bool,
    // ---- Dinic scratch, resident so warm solves allocate nothing ----
    /// BFS level of each vertex.
    level: Vec<u32>,
    /// Current-arc pointer per vertex (index into its CSR slice).
    iter_ptr: Vec<u32>,
    /// BFS queue.
    queue: Vec<u32>,
    /// Arcs on the current DFS path.
    path: Vec<u32>,
}

impl FlowNetwork {
    /// Creates a network with `n` vertices and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork { n, ..FlowNetwork::default() }
    }

    /// Resets to an empty `n`-vertex network, keeping every allocation.
    ///
    /// This is the arena entry point: a long-lived network cleared between
    /// builds reuses its arc arrays, CSR index and Dinic scratch.
    pub fn clear(&mut self, n: usize) {
        self.n = n;
        self.head.clear();
        self.cap.clear();
        self.csr_valid = false;
    }

    /// Pre-sizes the arc arrays, the CSR index and the Dinic scratch for a
    /// network of `n_vertices` vertices and `n_arcs` directed arcs
    /// (residual twins included), so the first build-and-solve performs no
    /// growth reallocation.
    pub fn reserve(&mut self, n_vertices: usize, n_arcs: usize) {
        self.head.reserve(n_arcs.saturating_sub(self.head.len()));
        self.cap.reserve(n_arcs.saturating_sub(self.cap.len()));
        self.arc_start.reserve((n_vertices + 1).saturating_sub(self.arc_start.len()));
        self.arc_order.reserve(n_arcs.saturating_sub(self.arc_order.len()));
        self.level.reserve(n_vertices.saturating_sub(self.level.len()));
        self.iter_ptr.reserve(n_vertices.saturating_sub(self.iter_ptr.len()));
        self.queue.reserve(n_vertices.saturating_sub(self.queue.len()));
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed arcs (residual twins included).
    pub fn n_arcs(&self) -> usize {
        self.head.len()
    }

    /// Adds a directed arc `from → to` with the given capacity and returns
    /// its arc id (the reverse residual arc is created automatically).
    pub fn add_arc(&mut self, from: u32, to: u32, capacity: u64) -> u32 {
        debug_assert!((from as usize) < self.n && (to as usize) < self.n);
        let id = self.head.len() as u32;
        self.head.push(to);
        self.cap.push(capacity);
        self.head.push(from);
        self.cap.push(0);
        self.csr_valid = false;
        id
    }

    /// Flow currently routed through arc `id` (capacity of its twin).
    pub fn flow(&self, id: u32) -> u64 {
        self.cap[id as usize ^ 1]
    }

    /// Residual capacity of arc `id`.
    pub fn residual(&self, id: u32) -> u64 {
        self.cap[id as usize]
    }

    /// Rebuilds the CSR arc index by counting sort over arc tails.
    /// `O(V + E)`, allocation-free once the index arrays have grown.
    fn build_csr(&mut self) {
        let m = self.head.len();
        self.arc_start.clear();
        self.arc_start.resize(self.n + 1, 0);
        for a in 0..m {
            let tail = self.head[a ^ 1] as usize;
            self.arc_start[tail + 1] += 1;
        }
        for v in 0..self.n {
            self.arc_start[v + 1] += self.arc_start[v];
        }
        self.arc_order.resize(m, 0);
        // Temporarily advance arc_start as the fill cursor, then shift back.
        for a in 0..m {
            let tail = self.head[a ^ 1] as usize;
            let slot = self.arc_start[tail];
            self.arc_order[slot as usize] = a as u32;
            self.arc_start[tail] += 1;
        }
        for v in (1..=self.n).rev() {
            self.arc_start[v] = self.arc_start[v - 1];
        }
        self.arc_start[0] = 0;
        self.csr_valid = true;
    }

    /// The arc ids leaving `v` (requires a valid CSR index).
    #[inline]
    fn arcs_of(&self, v: u32) -> std::ops::Range<usize> {
        self.arc_start[v as usize] as usize..self.arc_start[v as usize + 1] as usize
    }

    /// Computes the maximum `source → sink` flow with Dinic's algorithm.
    ///
    /// Reuses the resident scratch; on a warm (cleared-and-refilled)
    /// network of the same shape this performs no allocation.
    pub fn max_flow(&mut self, source: u32, sink: u32) -> u64 {
        assert_ne!(source, sink, "source and sink must differ");
        if !self.csr_valid {
            self.build_csr();
        }
        let n = self.n;
        self.level.resize(n, u32::MAX);
        self.iter_ptr.resize(n, 0);
        let mut total = 0u64;
        loop {
            // BFS: layer the residual graph.
            self.level.iter_mut().for_each(|l| *l = u32::MAX);
            self.level[source as usize] = 0;
            self.queue.clear();
            self.queue.push(source);
            let mut head = 0;
            while head < self.queue.len() {
                let v = self.queue[head];
                head += 1;
                for k in self.arcs_of(v) {
                    let a = self.arc_order[k] as usize;
                    let to = self.head[a];
                    if self.cap[a] > 0 && self.level[to as usize] == u32::MAX {
                        self.level[to as usize] = self.level[v as usize] + 1;
                        self.queue.push(to);
                    }
                }
            }
            if self.level[sink as usize] == u32::MAX {
                return total;
            }
            // Blocking flow via iterative DFS with current-arc pointers.
            self.iter_ptr.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs_augment(source, sink, u64::MAX);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    /// One DFS from `source`: finds a single augmenting path in the level
    /// graph and pushes its bottleneck. Iterative to avoid deep recursion.
    fn dfs_augment(&mut self, source: u32, sink: u32, limit: u64) -> u64 {
        self.path.clear();
        let mut v = source;
        loop {
            if v == sink {
                // Bottleneck and augment.
                let mut bottleneck = limit;
                for &a in &self.path {
                    bottleneck = bottleneck.min(self.cap[a as usize]);
                }
                for &a in &self.path {
                    self.cap[a as usize] -= bottleneck;
                    self.cap[(a ^ 1) as usize] += bottleneck;
                }
                return bottleneck;
            }
            let arcs = self.arcs_of(v);
            let base = arcs.start;
            let deg = arcs.len();
            let mut advanced = false;
            while (self.iter_ptr[v as usize] as usize) < deg {
                let a = self.arc_order[base + self.iter_ptr[v as usize] as usize];
                let to = self.head[a as usize];
                if self.cap[a as usize] > 0
                    && self.level[to as usize] == self.level[v as usize].wrapping_add(1)
                {
                    self.path.push(a);
                    v = to;
                    advanced = true;
                    break;
                }
                self.iter_ptr[v as usize] += 1;
            }
            if !advanced {
                if v == source {
                    return 0; // level graph exhausted
                }
                // Retreat: the vertex is dead for this phase.
                let a = self.path.pop().expect("non-source vertex has an entry arc");
                let prev = self.head[(a ^ 1) as usize];
                self.iter_ptr[prev as usize] += 1;
                v = prev;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_arc(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
        assert_eq!(net.flow(a), 7);
        assert_eq!(net.residual(a), 0);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two routes with a cross arc.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 10);
        net.add_arc(0, 2, 10);
        net.add_arc(1, 2, 1);
        net.add_arc(1, 3, 8);
        net.add_arc(2, 3, 10);
        assert_eq!(net.max_flow(0, 3), 18);
    }

    #[test]
    fn needs_residual_arcs() {
        // The textbook example where a greedy route must be partially undone.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1);
        net.add_arc(0, 2, 1);
        net.add_arc(1, 2, 1);
        net.add_arc(1, 3, 1);
        net.add_arc(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn disconnected_sink() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 5);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn bipartite_matching_as_flow() {
        // 3 tasks, 2 processors, capacities 1: maximum matching is 2.
        // Nodes: s=0, tasks 1..=3, procs 4..=5, t=6.
        let mut net = FlowNetwork::new(7);
        for v in 1..=3 {
            net.add_arc(0, v, 1);
        }
        net.add_arc(1, 4, 1);
        net.add_arc(2, 4, 1);
        net.add_arc(3, 5, 1);
        net.add_arc(4, 6, 1);
        net.add_arc(5, 6, 1);
        assert_eq!(net.max_flow(0, 6), 2);
    }

    #[test]
    fn capacities_accumulate_on_sink_arcs() {
        // 3 tasks, 1 processor with capacity 2 → flow 2.
        let mut net = FlowNetwork::new(6);
        for v in 1..=3 {
            net.add_arc(0, v, 1);
            net.add_arc(v, 4, 1);
        }
        net.add_arc(4, 5, 2);
        assert_eq!(net.max_flow(0, 5), 2);
    }

    #[test]
    fn flow_conservation() {
        let mut net = FlowNetwork::new(5);
        let arcs = [
            net.add_arc(0, 1, 4),
            net.add_arc(0, 2, 2),
            net.add_arc(1, 2, 2),
            net.add_arc(1, 3, 1),
            net.add_arc(2, 3, 5),
            net.add_arc(3, 4, 6),
        ];
        // Vertex 1 can forward at most 3 units (1→2 cap 2, 1→3 cap 1), so
        // the maximum is 3 + 2 = 5.
        let f = net.max_flow(0, 4);
        assert_eq!(f, 5);
        // Conservation at vertex 2: inflow == outflow.
        let inflow = net.flow(arcs[1]) + net.flow(arcs[2]);
        let outflow = net.flow(arcs[4]);
        assert_eq!(inflow, outflow);
    }

    #[test]
    fn incremental_arcs_after_a_solve() {
        // Adding arcs invalidates the CSR index; a second solve must see
        // both the residual state and the new arc.
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 4);
        net.add_arc(1, 2, 2);
        assert_eq!(net.max_flow(0, 2), 2);
        net.add_arc(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 2, "second route bounded by 0→1 residual");
    }

    #[test]
    fn cleared_network_reuses_allocations() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1);
        net.add_arc(1, 3, 1);
        assert_eq!(net.max_flow(0, 3), 1);
        net.clear(4);
        assert_eq!(net.n_arcs(), 0);
        net.add_arc(0, 2, 5);
        net.add_arc(2, 3, 4);
        assert_eq!(net.max_flow(0, 3), 4);
    }

    #[test]
    fn clear_can_resize() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 1);
        assert_eq!(net.max_flow(0, 1), 1);
        net.clear(6);
        for v in 1..=3 {
            net.add_arc(0, v, 1);
            net.add_arc(v, 4, 1);
        }
        net.add_arc(4, 5, 2);
        assert_eq!(net.max_flow(0, 5), 2);
    }
}
