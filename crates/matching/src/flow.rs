//! A small generic max-flow solver (Dinic's algorithm).
//!
//! The exact algorithm for `SINGLEPROC-UNIT` needs maximum matchings in the
//! deadline-expanded graph `G_D`; rather than materializing `D` copies of
//! every processor we solve the equivalent flow problem with processor
//! capacities (see [`crate::capacitated`]). The solver is deliberately
//! general: unit tests exercise it on classical flow networks as well.
//!
//! The residual graph is stored in CSR form (matching
//! `semimatch_graph::Bipartite`): arcs append to flat `head`/`cap` arrays
//! and the per-vertex arc lists are two flat index arrays rebuilt lazily
//! before a solve. The Dinic scratch (levels, current-arc pointers, BFS
//! queue, DFS path) lives inside the network, so a [`FlowNetwork`] that is
//! [`clear`](FlowNetwork::clear)ed and refilled — the
//! [`crate::SearchWorkspace`] arena pattern — performs repeated max-flows
//! with no per-call allocation once warm.
//!
//! Two extensions serve the fast-exact frontier:
//!
//! * **Capacity surgery** ([`set_capacity`](FlowNetwork::set_capacity),
//!   [`raise_capacity`](FlowNetwork::raise_capacity),
//!   [`lower_capacity`](FlowNetwork::lower_capacity)) edits an arc's total
//!   capacity *in place*, repairing the residual state when flow must be
//!   cancelled — the warm-started capacity probes of the FLN bisection keep
//!   one resident network and only augment the delta between probes.
//! * **A min-cost layer** ([`add_arc_with_cost`](FlowNetwork::add_arc_with_cost),
//!   [`min_cost_max_flow`](FlowNetwork::min_cost_max_flow)) runs successive
//!   shortest augmenting paths with Johnson potentials over the same arc
//!   arrays — all-integer reduced costs, no floats.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use semimatch_obs as obs;

/// CSR flow network with residual arcs and resident Dinic scratch.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    /// Number of vertices.
    n: usize,
    /// Head vertex of each arc. Arc `2k+1` is the residual twin of arc `2k`,
    /// so the tail of arc `a` is `head[a ^ 1]`.
    head: Vec<u32>,
    /// Residual capacity of each arc.
    cap: Vec<u64>,
    /// Per-arc cost, filled lazily: empty (or short) while only
    /// [`add_arc`](Self::add_arc) has been used, so pure max-flow networks
    /// pay nothing. Twin arcs carry the negated cost.
    cost: Vec<i128>,
    /// CSR offsets: the arcs leaving vertex `v` are
    /// `arc_order[arc_start[v] .. arc_start[v + 1]]`. Rebuilt lazily.
    arc_start: Vec<u32>,
    /// Arc ids grouped by tail vertex (CSR payload).
    arc_order: Vec<u32>,
    /// Whether `arc_start`/`arc_order` reflect the current arc set.
    csr_valid: bool,
    /// `(source, sink)` of the last solve. Cancellation walks stop at these
    /// outright: by conservation the source holds no incoming and the sink
    /// no outgoing flow, so scanning their (often huge) arc lists is waste.
    terminals: Option<(u32, u32)>,
    /// Augmenting paths pushed since construction (Dinic DFS augments and
    /// min-cost shortest-path augments alike). Monotone — never reset by
    /// [`clear`](Self::clear) — so callers meter a region by
    /// snapshot-and-subtract.
    augmentations: u64,
    // ---- Dinic scratch, resident so warm solves allocate nothing ----
    /// BFS level of each vertex.
    level: Vec<u32>,
    /// Current-arc pointer per vertex (index into its CSR slice).
    iter_ptr: Vec<u32>,
    /// BFS queue.
    queue: Vec<u32>,
    /// Arcs on the current DFS path.
    path: Vec<u32>,
    // ---- Min-cost scratch (successive shortest paths) ----
    /// Johnson potentials.
    pot: Vec<i128>,
    /// Dijkstra distances over reduced costs.
    dist: Vec<u128>,
    /// Arc that reached each vertex on the current shortest-path tree.
    parent: Vec<u32>,
    /// Dijkstra frontier (lazy-deletion binary heap).
    heap: BinaryHeap<Reverse<(u128, u32)>>,
}

impl FlowNetwork {
    /// Creates a network with `n` vertices and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork { n, ..FlowNetwork::default() }
    }

    /// Resets to an empty `n`-vertex network, keeping every allocation.
    ///
    /// This is the arena entry point: a long-lived network cleared between
    /// builds reuses its arc arrays, CSR index and Dinic scratch.
    pub fn clear(&mut self, n: usize) {
        self.n = n;
        self.head.clear();
        self.cap.clear();
        self.cost.clear();
        self.csr_valid = false;
        self.terminals = None;
    }

    /// Pre-sizes the arc arrays, the CSR index and the Dinic scratch for a
    /// network of `n_vertices` vertices and `n_arcs` directed arcs
    /// (residual twins included), so the first build-and-solve performs no
    /// growth reallocation.
    pub fn reserve(&mut self, n_vertices: usize, n_arcs: usize) {
        self.head.reserve(n_arcs.saturating_sub(self.head.len()));
        self.cap.reserve(n_arcs.saturating_sub(self.cap.len()));
        self.arc_start.reserve((n_vertices + 1).saturating_sub(self.arc_start.len()));
        self.arc_order.reserve(n_arcs.saturating_sub(self.arc_order.len()));
        self.level.reserve(n_vertices.saturating_sub(self.level.len()));
        self.iter_ptr.reserve(n_vertices.saturating_sub(self.iter_ptr.len()));
        self.queue.reserve(n_vertices.saturating_sub(self.queue.len()));
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed arcs (residual twins included).
    pub fn n_arcs(&self) -> usize {
        self.head.len()
    }

    /// Adds a directed arc `from → to` with the given capacity and returns
    /// its arc id (the reverse residual arc is created automatically).
    pub fn add_arc(&mut self, from: u32, to: u32, capacity: u64) -> u32 {
        debug_assert!((from as usize) < self.n && (to as usize) < self.n);
        let id = self.head.len() as u32;
        self.head.push(to);
        self.cap.push(capacity);
        self.head.push(from);
        self.cap.push(0);
        self.csr_valid = false;
        id
    }

    /// Flow currently routed through arc `id` (capacity of its twin).
    pub fn flow(&self, id: u32) -> u64 {
        self.cap[id as usize ^ 1]
    }

    /// Residual capacity of arc `id`.
    pub fn residual(&self, id: u32) -> u64 {
        self.cap[id as usize]
    }

    /// Total capacity of arc `id` (residual plus routed flow).
    pub fn capacity(&self, id: u32) -> u64 {
        self.cap[id as usize] + self.cap[id as usize ^ 1]
    }

    /// Augmenting paths pushed since construction, across
    /// [`max_flow`](Self::max_flow) and
    /// [`min_cost_max_flow`](Self::min_cost_max_flow) calls alike. Monotone
    /// (never reset by [`clear`](Self::clear)): meter a region by
    /// snapshot-and-subtract.
    pub fn augmentations(&self) -> u64 {
        self.augmentations
    }

    /// Adds a directed arc `from → to` with the given capacity and cost,
    /// returning its arc id. The residual twin carries the negated cost, so
    /// cancelling flow refunds it. Costs must be non-negative:
    /// [`min_cost_max_flow`](Self::min_cost_max_flow) starts its Johnson
    /// potentials at zero.
    pub fn add_arc_with_cost(&mut self, from: u32, to: u32, capacity: u64, cost: i128) -> u32 {
        debug_assert!(cost >= 0, "initial arc costs must be non-negative");
        let id = self.add_arc(from, to, capacity);
        if cost != 0 {
            // Backfill zero costs for any plain `add_arc` arcs before us.
            self.cost.resize(id as usize, 0);
            self.cost.push(cost);
            self.cost.push(-cost);
        }
        id
    }

    /// Cost of arc `id` (zero for arcs added via [`add_arc`](Self::add_arc)).
    #[inline]
    fn arc_cost(&self, id: u32) -> i128 {
        self.cost.get(id as usize).copied().unwrap_or(0)
    }

    /// Rewrites the **total** capacity of arc `id` in place, repairing the
    /// residual state so the network stays consistent for the next solve —
    /// the warm-probe primitive. Raising capacity only widens the residual;
    /// lowering below the routed flow cancels the excess in one batched
    /// walk per endpoint, following incoming flow back to the source and
    /// outgoing flow forward to the sink. Returns the number of flow units
    /// cancelled.
    ///
    /// The repair walks terminate at the (unique) net-excess endpoints, so
    /// they require the routed flow to be cycle-free — true for any flow
    /// found by augmenting-path solvers on a DAG, such as the
    /// source → task → processor → sink networks of
    /// [`crate::capacitated`].
    pub fn set_capacity(&mut self, id: u32, new_cap: u64) -> u64 {
        debug_assert_eq!(id % 2, 0, "capacity surgery targets forward arcs");
        let a = id as usize;
        let routed = self.cap[a ^ 1];
        if new_cap >= routed {
            // No flow touched: just widen or narrow the slack.
            self.cap[a] = new_cap - routed;
            return 0;
        }
        if !self.csr_valid {
            self.build_csr();
        }
        // Undo the excess on the arc itself, then repair conservation at
        // both endpoints.
        let excess = routed - new_cap;
        if obs::enabled() {
            obs::counter_add("flow.cancellation_batches", 1);
            obs::observe("flow.cancel_batch_units", excess);
        }
        self.cap[a ^ 1] -= excess;
        self.cancel_units_upstream(self.head[a ^ 1], excess);
        self.cancel_units_downstream(self.head[a], excess);
        // Routed flow is now exactly `new_cap`: no residual slack remains.
        self.cap[a] = 0;
        excess
    }

    /// [`set_capacity`](Self::set_capacity) restricted to widening: keeps
    /// the existing flow intact and only exposes more residual headroom.
    pub fn raise_capacity(&mut self, id: u32, new_cap: u64) {
        debug_assert!(new_cap >= self.capacity(id), "raise_capacity must not shrink");
        let cancelled = self.set_capacity(id, new_cap);
        debug_assert_eq!(cancelled, 0);
    }

    /// [`set_capacity`](Self::set_capacity) restricted to narrowing: repairs
    /// the residual state and returns the flow units cancelled.
    pub fn lower_capacity(&mut self, id: u32, new_cap: u64) -> u64 {
        debug_assert!(new_cap <= self.capacity(id), "lower_capacity must not widen");
        self.set_capacity(id, new_cap)
    }

    /// Copies the entire residual state (per-arc capacities, i.e. the
    /// routed flow **and** every arc's slack) into `out`. Together with
    /// [`restore_flow`](Self::restore_flow) this checkpoints a solve: a
    /// warm probe session snapshots before a speculative capacity raise and
    /// rolls back when it wants to keep its anchor instead — one `O(arcs)`
    /// memcpy, against the many long-path re-augmentation phases that
    /// cancelling a near-maximum flow would cost.
    pub fn save_flow(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.cap);
    }

    /// Restores residual state saved by [`save_flow`](Self::save_flow).
    /// The arc set must be unchanged since the save (same arcs in the same
    /// order); the CSR index and scratch are untouched.
    pub fn restore_flow(&mut self, saved: &[u64]) {
        assert_eq!(saved.len(), self.cap.len(), "snapshot is from a different arc set");
        self.cap.copy_from_slice(saved);
    }

    /// Cancels `count` units of flow *entering* `v`, recursing upstream
    /// along incoming flow until the walk reaches a vertex with none (the
    /// source, by conservation). Odd arcs leaving `v` with residual
    /// capacity are exactly the twins of flow-carrying arcs into `v`. The
    /// whole batch shares one scan of each visited arc list, and the walk
    /// stops at the recorded source outright — a hot proc→sink lowering in
    /// a warm probe session would otherwise rescan the source's `n`-arc
    /// list once per cancelled unit. Recursion depth is bounded by the
    /// longest flow-carrying path (the flow is cycle-free, see
    /// [`set_capacity`](Self::set_capacity)).
    fn cancel_units_upstream(&mut self, v: u32, mut count: u64) {
        if self.terminals.is_some_and(|(s, _)| s == v) {
            return;
        }
        for k in self.arcs_of(v) {
            if count == 0 {
                return;
            }
            let t = self.arc_order[k] as usize;
            if t % 2 == 1 && self.cap[t] > 0 {
                let take = self.cap[t].min(count);
                self.cap[t] -= take;
                self.cap[t ^ 1] += take;
                count -= take;
                self.cancel_units_upstream(self.head[t], take);
            }
        }
    }

    /// Cancels `count` units of flow *leaving* `v`, recursing downstream
    /// along outgoing flow until the walk reaches a vertex with none (the
    /// sink). Mirror of
    /// [`cancel_units_upstream`](Self::cancel_units_upstream).
    fn cancel_units_downstream(&mut self, v: u32, mut count: u64) {
        if self.terminals.is_some_and(|(_, t)| t == v) {
            return;
        }
        for k in self.arcs_of(v) {
            if count == 0 {
                return;
            }
            let t = self.arc_order[k] as usize;
            if t.is_multiple_of(2) && self.cap[t ^ 1] > 0 {
                let take = self.cap[t ^ 1].min(count);
                self.cap[t ^ 1] -= take;
                self.cap[t] += take;
                count -= take;
                self.cancel_units_downstream(self.head[t], take);
            }
        }
    }

    /// Rebuilds the CSR arc index by counting sort over arc tails.
    /// `O(V + E)`, allocation-free once the index arrays have grown.
    fn build_csr(&mut self) {
        if obs::enabled() {
            obs::counter_add("flow.csr_rebuilds", 1);
        }
        let m = self.head.len();
        self.arc_start.clear();
        self.arc_start.resize(self.n + 1, 0);
        for a in 0..m {
            let tail = self.head[a ^ 1] as usize;
            self.arc_start[tail + 1] += 1;
        }
        for v in 0..self.n {
            self.arc_start[v + 1] += self.arc_start[v];
        }
        self.arc_order.resize(m, 0);
        // Temporarily advance arc_start as the fill cursor, then shift back.
        for a in 0..m {
            let tail = self.head[a ^ 1] as usize;
            let slot = self.arc_start[tail];
            self.arc_order[slot as usize] = a as u32;
            self.arc_start[tail] += 1;
        }
        for v in (1..=self.n).rev() {
            self.arc_start[v] = self.arc_start[v - 1];
        }
        self.arc_start[0] = 0;
        self.csr_valid = true;
    }

    /// The arc ids leaving `v` (requires a valid CSR index).
    #[inline]
    fn arcs_of(&self, v: u32) -> std::ops::Range<usize> {
        self.arc_start[v as usize] as usize..self.arc_start[v as usize + 1] as usize
    }

    /// Computes the maximum `source → sink` flow with Dinic's algorithm.
    ///
    /// Reuses the resident scratch; on a warm (cleared-and-refilled)
    /// network of the same shape this performs no allocation.
    pub fn max_flow(&mut self, source: u32, sink: u32) -> u64 {
        assert_ne!(source, sink, "source and sink must differ");
        self.terminals = Some((source, sink));
        if !self.csr_valid {
            self.build_csr();
        }
        let n = self.n;
        self.level.resize(n, u32::MAX);
        self.iter_ptr.resize(n, 0);
        let mut total = 0u64;
        let augs_before = self.augmentations;
        let mut phases = 0u64;
        loop {
            // BFS: layer the residual graph.
            self.level.iter_mut().for_each(|l| *l = u32::MAX);
            self.level[source as usize] = 0;
            self.queue.clear();
            self.queue.push(source);
            let mut head = 0;
            while head < self.queue.len() {
                let v = self.queue[head];
                head += 1;
                for k in self.arcs_of(v) {
                    let a = self.arc_order[k] as usize;
                    let to = self.head[a];
                    if self.cap[a] > 0 && self.level[to as usize] == u32::MAX {
                        self.level[to as usize] = self.level[v as usize] + 1;
                        self.queue.push(to);
                    }
                }
            }
            if self.level[sink as usize] == u32::MAX {
                if obs::enabled() {
                    obs::counter_add("flow.augmentations", self.augmentations - augs_before);
                    obs::counter_add("flow.dinic_phases", phases);
                }
                return total;
            }
            phases += 1;
            // Blocking flow via iterative DFS with current-arc pointers.
            self.iter_ptr.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs_augment(source, sink, u64::MAX);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    /// One DFS from `source`: finds a single augmenting path in the level
    /// graph and pushes its bottleneck. Iterative to avoid deep recursion.
    fn dfs_augment(&mut self, source: u32, sink: u32, limit: u64) -> u64 {
        self.path.clear();
        let mut v = source;
        loop {
            if v == sink {
                // Bottleneck and augment.
                let mut bottleneck = limit;
                for &a in &self.path {
                    bottleneck = bottleneck.min(self.cap[a as usize]);
                }
                for &a in &self.path {
                    self.cap[a as usize] -= bottleneck;
                    self.cap[(a ^ 1) as usize] += bottleneck;
                }
                self.augmentations += 1;
                return bottleneck;
            }
            let arcs = self.arcs_of(v);
            let base = arcs.start;
            let deg = arcs.len();
            let mut advanced = false;
            while (self.iter_ptr[v as usize] as usize) < deg {
                let a = self.arc_order[base + self.iter_ptr[v as usize] as usize];
                let to = self.head[a as usize];
                if self.cap[a as usize] > 0
                    && self.level[to as usize] == self.level[v as usize].wrapping_add(1)
                {
                    self.path.push(a);
                    v = to;
                    advanced = true;
                    break;
                }
                self.iter_ptr[v as usize] += 1;
            }
            if !advanced {
                if v == source {
                    return 0; // level graph exhausted
                }
                // Retreat: the vertex is dead for this phase.
                let a = self.path.pop().expect("non-source vertex has an entry arc");
                let prev = self.head[(a ^ 1) as usize];
                self.iter_ptr[prev as usize] += 1;
                v = prev;
            }
        }
    }

    /// Computes a maximum `source → sink` flow of minimum total cost by
    /// successive shortest augmenting paths with Johnson potentials.
    /// Returns `(flow, cost)`.
    ///
    /// All arithmetic is integral: Dijkstra runs over the reduced costs
    /// `cost(a) + pot(tail) − pot(head)`, which the potential update keeps
    /// non-negative, so there is no float fallback anywhere. Requires every
    /// initial arc cost to be non-negative (potentials start at zero —
    /// enforced by [`add_arc_with_cost`](Self::add_arc_with_cost)). The
    /// scratch (potentials, distances, parent arcs, heap) is resident:
    /// warm repeated solves allocate nothing. Ties in the Dijkstra heap
    /// break on vertex id, so the routed flow is deterministic.
    pub fn min_cost_max_flow(&mut self, source: u32, sink: u32) -> (u64, i128) {
        assert_ne!(source, sink, "source and sink must differ");
        self.terminals = Some((source, sink));
        if !self.csr_valid {
            self.build_csr();
        }
        let n = self.n;
        self.pot.clear();
        self.pot.resize(n, 0);
        self.dist.resize(n, u128::MAX);
        self.parent.resize(n, u32::MAX);
        let mut total_flow = 0u64;
        let mut total_cost = 0i128;
        let augs_before = self.augmentations;
        let mut dijkstra_rounds = 0u64;
        loop {
            dijkstra_rounds += 1;
            // Dijkstra over reduced costs, lazy-deletion heap.
            self.dist.iter_mut().for_each(|d| *d = u128::MAX);
            self.dist[source as usize] = 0;
            self.heap.clear();
            self.heap.push(Reverse((0, source)));
            while let Some(Reverse((d, v))) = self.heap.pop() {
                if d > self.dist[v as usize] {
                    continue; // stale entry
                }
                for k in self.arcs_of(v) {
                    let a = self.arc_order[k];
                    if self.cap[a as usize] == 0 {
                        continue;
                    }
                    let to = self.head[a as usize];
                    let rc = self.arc_cost(a) + self.pot[v as usize] - self.pot[to as usize];
                    debug_assert!(rc >= 0, "reduced costs stay non-negative");
                    let nd = d + rc as u128;
                    if nd < self.dist[to as usize] {
                        self.dist[to as usize] = nd;
                        self.parent[to as usize] = a;
                        self.heap.push(Reverse((nd, to)));
                    }
                }
            }
            let d_sink = self.dist[sink as usize];
            if d_sink == u128::MAX {
                if obs::enabled() {
                    obs::counter_add("mcf.dijkstra_rounds", dijkstra_rounds);
                    obs::counter_add("mcf.potentials_resets", 1);
                    obs::counter_add("flow.augmentations", self.augmentations - augs_before);
                }
                return (total_flow, total_cost);
            }
            // Potential update keeps every residual reduced cost ≥ 0, with
            // unreached vertices clamped to the sink distance.
            for v in 0..n {
                self.pot[v] += self.dist[v].min(d_sink) as i128;
            }
            // Bottleneck along the shortest-path tree, then augment.
            let mut bottleneck = u64::MAX;
            let mut v = sink;
            while v != source {
                let a = self.parent[v as usize];
                bottleneck = bottleneck.min(self.cap[a as usize]);
                v = self.head[a as usize ^ 1];
            }
            let mut v = sink;
            while v != source {
                let a = self.parent[v as usize];
                self.cap[a as usize] -= bottleneck;
                self.cap[a as usize ^ 1] += bottleneck;
                total_cost += self.arc_cost(a) * bottleneck as i128;
                v = self.head[a as usize ^ 1];
            }
            total_flow += bottleneck;
            self.augmentations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_arc(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
        assert_eq!(net.flow(a), 7);
        assert_eq!(net.residual(a), 0);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two routes with a cross arc.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 10);
        net.add_arc(0, 2, 10);
        net.add_arc(1, 2, 1);
        net.add_arc(1, 3, 8);
        net.add_arc(2, 3, 10);
        assert_eq!(net.max_flow(0, 3), 18);
    }

    #[test]
    fn needs_residual_arcs() {
        // The textbook example where a greedy route must be partially undone.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1);
        net.add_arc(0, 2, 1);
        net.add_arc(1, 2, 1);
        net.add_arc(1, 3, 1);
        net.add_arc(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn disconnected_sink() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 5);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn bipartite_matching_as_flow() {
        // 3 tasks, 2 processors, capacities 1: maximum matching is 2.
        // Nodes: s=0, tasks 1..=3, procs 4..=5, t=6.
        let mut net = FlowNetwork::new(7);
        for v in 1..=3 {
            net.add_arc(0, v, 1);
        }
        net.add_arc(1, 4, 1);
        net.add_arc(2, 4, 1);
        net.add_arc(3, 5, 1);
        net.add_arc(4, 6, 1);
        net.add_arc(5, 6, 1);
        assert_eq!(net.max_flow(0, 6), 2);
    }

    #[test]
    fn capacities_accumulate_on_sink_arcs() {
        // 3 tasks, 1 processor with capacity 2 → flow 2.
        let mut net = FlowNetwork::new(6);
        for v in 1..=3 {
            net.add_arc(0, v, 1);
            net.add_arc(v, 4, 1);
        }
        net.add_arc(4, 5, 2);
        assert_eq!(net.max_flow(0, 5), 2);
    }

    #[test]
    fn flow_conservation() {
        let mut net = FlowNetwork::new(5);
        let arcs = [
            net.add_arc(0, 1, 4),
            net.add_arc(0, 2, 2),
            net.add_arc(1, 2, 2),
            net.add_arc(1, 3, 1),
            net.add_arc(2, 3, 5),
            net.add_arc(3, 4, 6),
        ];
        // Vertex 1 can forward at most 3 units (1→2 cap 2, 1→3 cap 1), so
        // the maximum is 3 + 2 = 5.
        let f = net.max_flow(0, 4);
        assert_eq!(f, 5);
        // Conservation at vertex 2: inflow == outflow.
        let inflow = net.flow(arcs[1]) + net.flow(arcs[2]);
        let outflow = net.flow(arcs[4]);
        assert_eq!(inflow, outflow);
    }

    #[test]
    fn incremental_arcs_after_a_solve() {
        // Adding arcs invalidates the CSR index; a second solve must see
        // both the residual state and the new arc.
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 4);
        net.add_arc(1, 2, 2);
        assert_eq!(net.max_flow(0, 2), 2);
        net.add_arc(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 2, "second route bounded by 0→1 residual");
    }

    #[test]
    fn cleared_network_reuses_allocations() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1);
        net.add_arc(1, 3, 1);
        assert_eq!(net.max_flow(0, 3), 1);
        net.clear(4);
        assert_eq!(net.n_arcs(), 0);
        net.add_arc(0, 2, 5);
        net.add_arc(2, 3, 4);
        assert_eq!(net.max_flow(0, 3), 4);
    }

    /// A tiny capacitated-assignment network: s=0, tasks 1..=3, procs 4..=5,
    /// t=6, every task compatible with every proc. Returns the sink arcs.
    fn probe_net(cap_a: u64, cap_b: u64) -> (FlowNetwork, u32, u32) {
        let mut net = FlowNetwork::new(7);
        for v in 1..=3 {
            net.add_arc(0, v, 1);
            net.add_arc(v, 4, 1);
            net.add_arc(v, 5, 1);
        }
        let sa = net.add_arc(4, 6, cap_a);
        let sb = net.add_arc(5, 6, cap_b);
        (net, sa, sb)
    }

    #[test]
    fn raise_capacity_warm_starts_the_next_solve() {
        let (mut net, sa, sb) = probe_net(1, 1);
        assert_eq!(net.max_flow(0, 6), 2);
        let before = net.augmentations();
        net.raise_capacity(sa, 2);
        net.raise_capacity(sb, 2);
        // Only the one missing unit is augmented; the old flow persists.
        assert_eq!(net.max_flow(0, 6), 1);
        assert_eq!(net.augmentations() - before, 1);
        assert_eq!(net.flow(sa) + net.flow(sb), 3);
    }

    #[test]
    fn lower_capacity_cancels_excess_flow() {
        let (mut net, sa, sb) = probe_net(3, 3);
        assert_eq!(net.max_flow(0, 6), 3);
        let excess = net.flow(sa).saturating_sub(1);
        assert_eq!(net.lower_capacity(sa, 1), excess);
        assert_eq!(net.flow(sa), 1);
        // The repaired network is consistent: re-solving routes the
        // cancelled units through the other processor.
        assert_eq!(net.max_flow(0, 6), excess);
        assert_eq!(net.flow(sa), 1);
        assert_eq!(net.flow(sb), 2);
        // Source arcs all saturated again.
        assert_eq!((0..3).map(|k| net.flow(6 * k)).sum::<u64>(), 3);
    }

    #[test]
    fn set_capacity_round_trips() {
        let (mut net, sa, _sb) = probe_net(2, 0);
        assert_eq!(net.max_flow(0, 6), 2);
        assert_eq!(net.set_capacity(sa, 0), 2, "all routed flow cancelled");
        assert_eq!(net.flow(sa), 0);
        assert_eq!(net.capacity(sa), 0);
        net.set_capacity(sa, 2);
        assert_eq!(net.capacity(sa), 2);
        assert_eq!(net.max_flow(0, 6), 2, "repair leaves the network solvable");
    }

    #[test]
    fn min_cost_picks_the_cheap_route() {
        // Two parallel s→t routes with costs 1 and 5; both must fill for
        // maximality, and the total cost is exact.
        let mut net = FlowNetwork::new(4);
        net.add_arc_with_cost(0, 1, 2, 0);
        net.add_arc_with_cost(0, 2, 2, 0);
        let c1 = net.add_arc_with_cost(1, 3, 2, 1);
        let c2 = net.add_arc_with_cost(2, 3, 2, 5);
        let (f, c) = net.min_cost_max_flow(0, 3);
        assert_eq!(f, 4);
        assert_eq!(c, 12, "2 units at cost 1 + 2 units at cost 5");
        assert_eq!(net.flow(c1), 2);
        assert_eq!(net.flow(c2), 2);
    }

    #[test]
    fn min_cost_needs_residual_rerouting() {
        // The classic case where the cheapest augmenting path must undo a
        // previous routing decision through a negative-reduced-cost twin.
        let mut net = FlowNetwork::new(4);
        net.add_arc_with_cost(0, 1, 1, 1);
        net.add_arc_with_cost(0, 2, 1, 4);
        net.add_arc_with_cost(1, 2, 1, 1);
        net.add_arc_with_cost(1, 3, 1, 6);
        net.add_arc_with_cost(2, 3, 2, 1);
        let (f, c) = net.min_cost_max_flow(0, 3);
        assert_eq!(f, 2);
        // Optimal: 0→1→2→3 (cost 3) + 0→2→3 (cost 5) = 8, beating any
        // routing that uses the cost-6 arc.
        assert_eq!(c, 8);
    }

    #[test]
    fn convex_bundle_spreads_load() {
        // 4 units into two procs, each offering unit sink arcs with
        // marginals 1, 3, 5 (convex): the optimum splits 2 / 2.
        let mut net = FlowNetwork::new(5);
        net.add_arc(0, 1, 4);
        for proc in [2u32, 3] {
            net.add_arc(1, proc, 4);
            for marginal in [1i128, 3, 5] {
                net.add_arc_with_cost(proc, 4, 1, marginal);
            }
        }
        let (f, c) = net.min_cost_max_flow(0, 4);
        assert_eq!(f, 4);
        // 2 units per proc: (1 + 3) + (1 + 3) = 8; any 3/1 split costs
        // 1+3+5 + 1 = 10.
        assert_eq!(c, 8);
    }

    #[test]
    fn clear_can_resize() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 1);
        assert_eq!(net.max_flow(0, 1), 1);
        net.clear(6);
        for v in 1..=3 {
            net.add_arc(0, v, 1);
            net.add_arc(v, 4, 1);
        }
        net.add_arc(4, 5, 2);
        assert_eq!(net.max_flow(0, 5), 2);
    }
}
