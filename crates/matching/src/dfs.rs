//! DFS-based augmenting path algorithm (MC21 style, with lookahead).
//!
//! This is the classical `O(|V1|·|E|)` algorithm of Duff's MC21, as surveyed
//! in Duff, Kaya, Uçar (TOMS 2011): for every exposed left vertex, search an
//! augmenting path depth-first. The *lookahead* optimization first scans for
//! a directly-free neighbor (with a persistent per-vertex cursor) before
//! descending, which is the single most effective practical speedup.

use semimatch_graph::Bipartite;

use crate::greedy::greedy_init;
use crate::matching::{Matching, NONE};
use crate::workspace::SearchWorkspace;

/// Maximum matching by DFS augmentation, starting from a greedy matching.
pub fn mc21(g: &Bipartite) -> Matching {
    let init = greedy_init(g);
    mc21_from(g, init)
}

/// DFS augmentation **without** the lookahead optimization (the plain PF
/// algorithm). Same output cardinality as [`mc21`]; kept to quantify the
/// lookahead's effect — the MatchMaker study's headline observation is
/// that lookahead is what makes DFS competitive in practice.
pub fn dfs_plain(g: &Bipartite) -> Matching {
    dfs_plain_in(g, &mut SearchWorkspace::new())
}

/// [`dfs_plain`] drawing its visited marks and DFS stack from a reusable
/// workspace.
pub fn dfs_plain_in(g: &Bipartite, ws: &mut SearchWorkspace) -> Matching {
    let mut m = greedy_init(g);
    let n1 = g.n_left() as usize;
    ws.reserve(g.n_left(), g.n_right());
    for v0 in 0..n1 {
        if m.mate_left[v0] != NONE {
            continue;
        }
        let stamp = ws.next_stamp();
        ws.stack.clear();
        ws.stack.push((v0 as u32, g.edge_range(v0 as u32).start));
        let mut found: Option<u32> = None;
        'dfs: while let Some(&mut (v, ref mut cursor)) = ws.stack.last_mut() {
            let range_end = g.edge_range(v).end;
            let mut advanced = false;
            while *cursor < range_end {
                let u = g.edge_right(*cursor);
                *cursor += 1;
                if ws.visited[u as usize] == stamp {
                    continue;
                }
                ws.visited[u as usize] = stamp;
                let w = m.mate_right[u as usize];
                if w == NONE {
                    found = Some(u);
                    break 'dfs;
                }
                ws.stack.push((w, g.edge_range(w).start));
                advanced = true;
                break;
            }
            if !advanced {
                ws.stack.pop();
            }
        }
        if let Some(mut u) = found {
            while let Some((v, _)) = ws.stack.pop() {
                let prev_u = m.mate_left[v as usize];
                m.mate_left[v as usize] = u;
                m.mate_right[u as usize] = v;
                if prev_u == NONE {
                    break;
                }
                u = prev_u;
            }
        }
    }
    m
}

/// Maximum matching by DFS augmentation from a caller-supplied matching.
pub fn mc21_from(g: &Bipartite, m: Matching) -> Matching {
    mc21_from_in(g, m, &mut SearchWorkspace::new())
}

/// [`mc21_from`] drawing all scratch (visited marks, lookahead cursors, the
/// DFS stack) from a reusable workspace. Allocation-free once `ws` has seen
/// the graph's dimensions.
pub fn mc21_from_in(g: &Bipartite, mut m: Matching, ws: &mut SearchWorkspace) -> Matching {
    let n1 = g.n_left() as usize;
    ws.reserve(g.n_left(), g.n_right());
    // Persistent lookahead cursor per left vertex: neighbors before the
    // cursor are known to be matched (they can only become unmatched through
    // augmentation, which never unmatches a right vertex). Re-initialized
    // per call — the invariant is relative to this graph and matching.
    for v in 0..g.n_left() {
        ws.lookahead[v as usize] = g.edge_range(v).start;
    }
    for v0 in 0..n1 {
        if m.mate_left[v0] != NONE {
            continue;
        }
        let stamp = ws.next_stamp();
        ws.stack.clear();
        ws.stack.push((v0 as u32, g.edge_range(v0 as u32).start));
        let mut found: Option<u32> = None; // free right vertex ending the path

        'dfs: while let Some(&mut (v, ref mut cursor)) = ws.stack.last_mut() {
            // Lookahead: scan for an immediately free neighbor.
            let range_end = g.edge_range(v).end;
            {
                let la = &mut ws.lookahead[v as usize];
                while *la < range_end {
                    let u = g.edge_right(*la);
                    if m.mate_right[u as usize] == NONE {
                        // Do not advance past a free vertex: it will be
                        // matched right now.
                        ws.visited[u as usize] = stamp;
                        found = Some(u);
                        break 'dfs;
                    }
                    *la += 1;
                }
            }
            // Regular DFS scan.
            let mut advanced = false;
            while *cursor < range_end {
                let u = g.edge_right(*cursor);
                *cursor += 1;
                if ws.visited[u as usize] == stamp {
                    continue;
                }
                ws.visited[u as usize] = stamp;
                let w = m.mate_right[u as usize];
                if w == NONE {
                    found = Some(u);
                    break 'dfs;
                }
                ws.stack.push((w, g.edge_range(w).start));
                advanced = true;
                break;
            }
            if !advanced {
                ws.stack.pop();
            }
        }

        if let Some(mut u) = found {
            // Augment along the stack: the top pairs with u, the one below
            // pairs with the right vertex freed by the top, and so on.
            while let Some((v, _)) = ws.stack.pop() {
                let prev_u = m.mate_left[v as usize];
                m.mate_left[v as usize] = u;
                m.mate_right[u as usize] = v;
                if prev_u == NONE {
                    break; // reached the exposed root v0
                }
                u = prev_u;
            }
        }
    }
    m
}

#[cfg(test)]
#[allow(clippy::type_complexity)] // edge-list test fixtures
mod tests {
    use super::*;

    #[test]
    fn finds_perfect_matching_where_greedy_fails() {
        // Greedy matches L0-R0; L1 only knows R0 and stays exposed without
        // augmentation.
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let m = mc21(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.cardinality(), 2);
    }

    #[test]
    fn long_augmenting_chain() {
        // L_i: {R_i, R_{i+1}} for i<k, L_k: {R_0} forces a full-length chain.
        let k = 50u32;
        let mut edges = Vec::new();
        for i in 0..k {
            edges.push((i, i));
            edges.push((i, i + 1));
        }
        edges.push((k, 0));
        let g = Bipartite::from_edges(k + 1, k + 1, &edges).unwrap();
        let m = mc21(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.cardinality(), (k + 1) as usize);
    }

    #[test]
    fn deficient_graph_matches_all_it_can() {
        // Three left vertices all adjacent only to R0.
        let g = Bipartite::from_edges(3, 1, &[(0, 0), (1, 0), (2, 0)]).unwrap();
        let m = mc21(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.cardinality(), 1);
    }

    #[test]
    fn respects_initial_matching() {
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let mut init = Matching::empty(2, 2);
        init.couple(0, 1);
        let m = mc21_from(&g, init);
        m.validate(&g).unwrap();
        assert_eq!(m.cardinality(), 2);
        // L0 keeps R1: augmentation never unmatches a matched right vertex.
        assert_eq!(m.mate_left[0], 1);
    }

    #[test]
    fn empty_and_isolated() {
        let g = Bipartite::from_edges(2, 2, &[]).unwrap();
        assert_eq!(mc21(&g).cardinality(), 0);
        let g = Bipartite::from_edges(3, 2, &[(1, 0)]).unwrap();
        assert_eq!(mc21(&g).cardinality(), 1);
    }

    #[test]
    fn plain_dfs_matches_lookahead_cardinality() {
        let cases: Vec<(u32, u32, Vec<(u32, u32)>)> = vec![
            (2, 2, vec![(0, 0), (0, 1), (1, 0)]),
            (5, 4, vec![(0, 0), (1, 0), (2, 0), (3, 1), (3, 2), (4, 3), (0, 3)]),
            (6, 3, vec![(0, 0), (1, 0), (2, 1), (3, 1), (4, 2), (5, 2)]),
            (3, 1, vec![(0, 0), (1, 0), (2, 0)]),
        ];
        for (n1, n2, edges) in cases {
            let g = Bipartite::from_edges(n1, n2, &edges).unwrap();
            let plain = dfs_plain(&g);
            plain.validate(&g).unwrap();
            assert_eq!(plain.cardinality(), mc21(&g).cardinality(), "{edges:?}");
        }
    }
}
