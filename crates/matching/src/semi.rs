//! Generalized Hopcroft–Karp for optimal semi-matchings.
//!
//! Katrenič and Semanišin (*A generalization of Hopcroft–Karp algorithm
//! for semi-matchings*) lift the classical phase structure of
//! Hopcroft–Karp from matchings to semi-matchings: instead of growing a
//! matching along shortest augmenting paths from free vertices, the
//! engine descends a complete assignment along shortest **load-reducing
//! paths** — alternating walks from a maximally loaded processor through
//! assigned tasks to a processor at least two units lighter; flipping
//! such a walk shifts one unit of load down the gradient. Each phase
//! builds one multi-source BFS level graph over the processors (sources =
//! all bottleneck processors) and then extracts a maximal set of disjoint
//! shortest paths with a stack DFS — augmenting along *all* shortest
//! load-reducing paths at once, the `O(√n · m)`-flavored counterpart of
//! the one-path-at-a-time descent.
//!
//! Optimality of the fixpoint is the symmetric-difference argument of
//! Harvey–Ladner–Lovász–Tamir specialized to the bottleneck: when no
//! bottleneck processor reaches a processor of load `≤ L − 2`, the
//! processors reachable from the bottleneck set all carry load `≥ L − 1`
//! and their tasks have no edges leaving the set, so every assignment
//! loads some reachable processor to at least `L`.
//!
//! All scratch (level arrays, intrusive per-processor task lists, BFS
//! queue, DFS stack, per-task edge cursors) lives in the shared
//! [`SearchWorkspace`], so warm repeated solves allocate only the
//! returned assignment.

use semimatch_graph::Bipartite;
use semimatch_obs as obs;

use crate::matching::NONE;
use crate::workspace::SearchWorkspace;

/// A complete task→processor assignment produced by the phase descent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemiAssignment {
    /// Processor of each task ([`NONE`] for tasks with no eligible
    /// processor, which the descent ignores).
    pub task_to_proc: Vec<u32>,
    /// Number of tasks on each processor.
    pub loads: Vec<u32>,
    /// BFS/DFS phases performed (the Hopcroft–Karp cost driver).
    pub phases: u32,
    /// Individual load-reducing path flips applied across all phases.
    pub flips: u64,
}

impl SemiAssignment {
    /// Largest processor load — the optimal makespan on unit weights.
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }
}

/// Bottleneck-optimal semi-matching assignment with throwaway scratch.
///
/// See [`optimal_semi_assignment_in`] for the warm-path variant.
pub fn optimal_semi_assignment(g: &Bipartite) -> SemiAssignment {
    optimal_semi_assignment_in(g, &mut SearchWorkspace::new())
}

/// Bottleneck-optimal semi-matching assignment on unit tasks, drawing all
/// scratch from `ws`.
///
/// Weights are ignored: every assigned task contributes one unit to its
/// processor (callers enforcing `SINGLEPROC-UNIT` semantics check
/// unit weights before dispatching here). The returned assignment
/// minimizes the maximum load over all complete assignments.
pub fn optimal_semi_assignment_in(g: &Bipartite, ws: &mut SearchWorkspace) -> SemiAssignment {
    let _span = obs::span!("hk_semi.solve");
    let n1 = g.n_left() as usize;
    let n2 = g.n_right() as usize;
    ws.reserve(g.n_left(), g.n_right());
    ws.labels[..n2].fill(0); // per-processor loads
    ws.list_head[..n2].fill(NONE);

    // Greedy seed: each task takes its currently least-loaded eligible
    // processor. On tall (n ≫ p) instances this already sits within one
    // unit of optimal almost everywhere, so few phases remain.
    let mut task_to_proc = vec![NONE; n1];
    for t in 0..n1 {
        let mut best = NONE;
        let mut best_load = u32::MAX;
        for &u in g.neighbors(t as u32) {
            if ws.labels[u as usize] < best_load {
                best_load = ws.labels[u as usize];
                best = u;
            }
        }
        if best != NONE {
            link_front(ws, best, t as u32);
            task_to_proc[t] = best;
            ws.labels[best as usize] += 1;
        }
    }

    let mut phases = 0u32;
    let mut flips = 0u64;
    let mut bfs_levels = 0u64;
    loop {
        let l_max = ws.labels[..n2].iter().copied().max().unwrap_or(0);
        if l_max <= 1 {
            break; // no processor two units lighter can exist
        }
        // ---- BFS: multi-source level graph from every bottleneck
        // processor, truncated at the first level holding a target
        // (load ≤ L − 2). Alternating step: processor → assigned task →
        // eligible processor.
        ws.rdist[..n2].fill(u32::MAX);
        ws.queue.clear();
        for u in 0..n2 {
            if ws.labels[u] == l_max {
                ws.rdist[u] = 0;
                ws.queue.push(u as u32);
            }
        }
        let mut found_level = u32::MAX;
        let mut head = 0;
        while head < ws.queue.len() {
            let u = ws.queue[head];
            head += 1;
            let du = ws.rdist[u as usize];
            if du >= found_level {
                break;
            }
            let mut t = ws.list_head[u as usize];
            while t != NONE {
                for &w in g.neighbors(t) {
                    if ws.rdist[w as usize] != u32::MAX {
                        continue;
                    }
                    ws.rdist[w as usize] = du + 1;
                    if ws.labels[w as usize] + 2 <= l_max {
                        found_level = du + 1; // shortest paths end here
                    } else {
                        ws.queue.push(w);
                    }
                }
                t = ws.list_next[t as usize];
            }
        }
        if found_level == u32::MAX {
            break; // no bottleneck processor can shed load: optimal
        }
        phases += 1;
        bfs_levels += found_level as u64;
        // ---- DFS phase: pull a maximal set of shortest paths out of the
        // level graph. Exhausted processors are dead-marked (stamped) so
        // later sources skip them; path validity (source still at L,
        // target still ≤ L − 2) is re-checked at flip time, so earlier
        // flips in the phase can never corrupt later ones.
        let dead = ws.next_stamp();
        for src in 0..n2 as u32 {
            if ws.labels[src as usize] != l_max || ws.rdist[src as usize] != 0 {
                continue;
            }
            if phase_dfs(g, ws, &mut task_to_proc, src, l_max, dead) {
                flips += 1;
            }
        }
    }

    if obs::enabled() {
        // Flushed once per solve: the phase loop itself touches no
        // telemetry, so instrumentation cost stays off the descent.
        obs::counter_add("hk_semi.solves", 1);
        obs::counter_add("hk_semi.phases", phases as u64);
        obs::counter_add("hk_semi.paths_extracted", flips);
        obs::counter_add("hk_semi.bfs_levels", bfs_levels);
    }
    let loads = ws.labels[..n2].to_vec();
    SemiAssignment { task_to_proc, loads, phases, flips }
}

/// One source's DFS through the level graph. Flips and returns `true` on
/// reaching a processor of load `≤ l_max − 2`; dead-marks every processor
/// it exhausts. Cycle-free because levels strictly increase along edges.
fn phase_dfs(
    g: &Bipartite,
    ws: &mut SearchWorkspace,
    task_to_proc: &mut [u32],
    src: u32,
    l_max: u32,
    dead: u32,
) -> bool {
    ws.stack.clear();
    let h = ws.list_head[src as usize];
    if h != NONE {
        ws.lookahead[h as usize] = 0;
    }
    ws.stack.push((src, h));
    while let Some(&(u, mut tcur)) = ws.stack.last() {
        let du = ws.rdist[u as usize];
        let mut next_proc = NONE;
        while tcur != NONE {
            let nbrs = g.neighbors(tcur);
            let mut k = ws.lookahead[tcur as usize] as usize;
            while k < nbrs.len() {
                let w = nbrs[k];
                k += 1;
                if ws.visited[w as usize] != dead && ws.rdist[w as usize] == du + 1 {
                    next_proc = w;
                    break;
                }
            }
            ws.lookahead[tcur as usize] = k as u32;
            if next_proc != NONE {
                break;
            }
            tcur = ws.list_next[tcur as usize];
            if tcur != NONE {
                ws.lookahead[tcur as usize] = 0;
            }
        }
        ws.stack.last_mut().expect("loop invariant").1 = tcur;
        if next_proc == NONE {
            // Every task of `u` is exhausted: nothing below `u` reaches a
            // target, so no later path this phase can either.
            ws.visited[u as usize] = dead;
            ws.stack.pop();
            continue;
        }
        let w = next_proc;
        ws.pred[w as usize] = tcur;
        if ws.labels[w as usize] + 2 <= l_max {
            flip_path(ws, task_to_proc, w);
            return true;
        }
        let h = ws.list_head[w as usize];
        if h != NONE {
            ws.lookahead[h as usize] = 0;
        }
        ws.stack.push((w, h));
    }
    false
}

/// Flips the discovered path: every task on it moves one processor
/// forward, shifting one unit of load from the level-0 source onto the
/// target `w`.
fn flip_path(ws: &mut SearchWorkspace, task_to_proc: &mut [u32], mut w: u32) {
    loop {
        let t = ws.pred[w as usize];
        let u = task_to_proc[t as usize];
        unlink(ws, u, t);
        link_front(ws, w, t);
        task_to_proc[t as usize] = w;
        ws.labels[u as usize] -= 1;
        ws.labels[w as usize] += 1;
        if ws.rdist[u as usize] == 0 {
            return; // reached the source
        }
        w = u;
    }
}

/// Pushes task `t` onto processor `u`'s intrusive assigned list.
fn link_front(ws: &mut SearchWorkspace, u: u32, t: u32) {
    let h = ws.list_head[u as usize];
    ws.list_next[t as usize] = h;
    ws.list_prev[t as usize] = NONE;
    if h != NONE {
        ws.list_prev[h as usize] = t;
    }
    ws.list_head[u as usize] = t;
}

/// Removes task `t` from processor `u`'s intrusive assigned list.
fn unlink(ws: &mut SearchWorkspace, u: u32, t: u32) {
    let prev = ws.list_prev[t as usize];
    let next = ws.list_next[t as usize];
    if prev == NONE {
        ws.list_head[u as usize] = next;
    } else {
        ws.list_next[prev as usize] = next;
    }
    if next != NONE {
        ws.list_prev[next as usize] = prev;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacitated::max_assignment;

    /// Reference optimum: smallest capacity whose capacitated assignment
    /// covers every task.
    fn reference_opt(g: &Bipartite) -> u32 {
        (1..=g.n_left().max(1)).find(|&d| max_assignment(g, d).is_complete()).unwrap_or(0)
    }

    #[test]
    fn fig1_optimum_is_one() {
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let a = optimal_semi_assignment(&g);
        assert_eq!(a.max_load(), 1);
        assert!(a.task_to_proc.iter().all(|&p| p != NONE));
    }

    #[test]
    fn forced_pileup() {
        let g = Bipartite::from_edges(5, 1, &[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)]).unwrap();
        assert_eq!(optimal_semi_assignment(&g).max_load(), 5);
    }

    #[test]
    fn chain_requires_cascading_flips() {
        // P0 crowded, each task can hop one processor right: optimum 1.
        let g = Bipartite::from_edges(
            4,
            4,
            &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3), (3, 0), (3, 1)],
        )
        .unwrap();
        let a = optimal_semi_assignment(&g);
        assert_eq!(a.max_load(), 1);
    }

    #[test]
    fn agrees_with_capacitated_search_on_random_instances() {
        // Deterministic pseudo-random sweep sharing one workspace.
        let mut ws = SearchWorkspace::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..60 {
            let n = 1 + (next() % 14) as u32;
            let p = 1 + (next() % 6) as u32;
            let mut edges = Vec::new();
            for t in 0..n {
                let deg = 1 + next() % p.min(4) as u64;
                let mut procs: Vec<u32> = (0..p).collect();
                for i in (1..procs.len()).rev() {
                    procs.swap(i, next() as usize % (i + 1));
                }
                for &u in procs.iter().take(deg as usize) {
                    edges.push((t, u));
                }
            }
            let g = Bipartite::from_edges(n, p, &edges).unwrap();
            let a = optimal_semi_assignment_in(&g, &mut ws);
            // Complete, eligible, loads consistent.
            let mut loads = vec![0u32; p as usize];
            for (t, &u) in a.task_to_proc.iter().enumerate() {
                assert!(g.neighbors(t as u32).contains(&u), "case {case}: foreign allocation");
                loads[u as usize] += 1;
            }
            assert_eq!(loads, a.loads, "case {case}: stale loads");
            assert_eq!(a.max_load(), reference_opt(&g), "case {case}: suboptimal bottleneck");
        }
    }

    #[test]
    fn empty_and_degenerate_instances() {
        let g = Bipartite::from_edges(0, 3, &[]).unwrap();
        let a = optimal_semi_assignment(&g);
        assert_eq!(a.max_load(), 0);
        assert_eq!(a.phases, 0);
        // A task with no edges stays unassigned instead of panicking.
        let g = Bipartite::from_edges(2, 1, &[(0, 0)]).unwrap();
        let a = optimal_semi_assignment(&g);
        assert_eq!(a.task_to_proc[1], NONE);
        assert_eq!(a.max_load(), 1);
    }

    #[test]
    fn workspace_reuse_is_invisible() {
        let g1 = Bipartite::from_edges(4, 2, &[(0, 0), (1, 0), (2, 0), (2, 1), (3, 1)]).unwrap();
        let g2 = Bipartite::from_edges(2, 3, &[(0, 0), (0, 2), (1, 2)]).unwrap();
        let mut ws = SearchWorkspace::new();
        let cold1 = optimal_semi_assignment(&g1);
        let cold2 = optimal_semi_assignment(&g2);
        for _ in 0..3 {
            assert_eq!(optimal_semi_assignment_in(&g1, &mut ws), cold1);
            assert_eq!(optimal_semi_assignment_in(&g2, &mut ws), cold2);
        }
    }
}
