//! König vertex covers: certificates of matching maximality.
//!
//! By König's theorem the size of a maximum matching in a bipartite graph
//! equals the size of a minimum vertex cover. Extracting a cover of the
//! same size as a matching therefore *proves* the matching maximum — the
//! test suites use this to certify every matching algorithm without
//! trusting any of them.

use semimatch_graph::Bipartite;

use crate::matching::{Matching, NONE};

/// A vertex cover of a bipartite graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexCover {
    /// Chosen left vertices.
    pub left: Vec<u32>,
    /// Chosen right vertices.
    pub right: Vec<u32>,
}

impl VertexCover {
    /// Total number of chosen vertices.
    pub fn size(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// True when every edge of `g` has an endpoint in the cover.
    pub fn covers(&self, g: &Bipartite) -> bool {
        let mut in_l = vec![false; g.n_left() as usize];
        let mut in_r = vec![false; g.n_right() as usize];
        for &v in &self.left {
            in_l[v as usize] = true;
        }
        for &u in &self.right {
            in_r[u as usize] = true;
        }
        for v in 0..g.n_left() {
            if in_l[v as usize] {
                continue;
            }
            for &u in g.neighbors(v) {
                if !in_r[u as usize] {
                    return false;
                }
            }
        }
        true
    }
}

/// Extracts a vertex cover from a matching via König's construction.
///
/// Let `Z` be the set of vertices reachable by alternating paths from the
/// exposed left vertices. The cover is `(V1 \ Z) ∪ (V2 ∩ Z)`. Its size
/// equals the matching cardinality **iff the matching is maximum**, so
/// [`certify_maximum`] compares the two.
pub fn koenig_cover(g: &Bipartite, m: &Matching) -> VertexCover {
    let n1 = g.n_left() as usize;
    let n2 = g.n_right() as usize;
    let mut z_left = vec![false; n1];
    let mut z_right = vec![false; n2];
    let mut queue: Vec<u32> = Vec::new();
    for v in 0..n1 {
        if m.mate_left[v] == NONE {
            z_left[v] = true;
            queue.push(v as u32);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &u in g.neighbors(v) {
            // Travel unmatched edges left→right.
            if m.mate_left[v as usize] == u || z_right[u as usize] {
                continue;
            }
            z_right[u as usize] = true;
            let w = m.mate_right[u as usize];
            // Travel matched edges right→left.
            if w != NONE && !z_left[w as usize] {
                z_left[w as usize] = true;
                queue.push(w);
            }
        }
    }
    let left = (0..n1 as u32).filter(|&v| !z_left[v as usize]).collect();
    let right = (0..n2 as u32).filter(|&u| z_right[u as usize]).collect();
    VertexCover { left, right }
}

/// Certifies that `m` is a **maximum** matching of `g`.
///
/// Returns the certifying cover on success; an error message describes any
/// violation (invalid matching, cover misses an edge, or size mismatch —
/// the last meaning `m` is not maximum).
pub fn certify_maximum(g: &Bipartite, m: &Matching) -> Result<VertexCover, String> {
    m.validate(g)?;
    let cover = koenig_cover(g, m);
    if !cover.covers(g) {
        return Err("König construction failed to produce a cover".into());
    }
    let card = m.cardinality();
    if cover.size() != card {
        return Err(format!(
            "cover size {} != matching cardinality {card}: matching is not maximum",
            cover.size()
        ));
    }
    Ok(cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::mc21;
    use crate::greedy::greedy_init;

    #[test]
    fn certifies_maximum_matching() {
        let g = Bipartite::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (2, 2)]).unwrap();
        let m = mc21(&g);
        let cover = certify_maximum(&g, &m).unwrap();
        assert_eq!(cover.size(), m.cardinality());
        assert!(cover.covers(&g));
    }

    #[test]
    fn rejects_non_maximum_matching() {
        // Greedy on this graph can strand L1 (matching of size 1 < 2).
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let mut m = Matching::empty(2, 2);
        m.couple(0, 0); // size 1, not maximum
        assert!(certify_maximum(&g, &m).is_err());
    }

    #[test]
    fn empty_matching_on_empty_graph_certifies() {
        let g = Bipartite::from_edges(3, 3, &[]).unwrap();
        let m = Matching::empty(3, 3);
        let cover = certify_maximum(&g, &m).unwrap();
        assert_eq!(cover.size(), 0);
    }

    #[test]
    fn greedy_is_sometimes_maximum_and_then_certifies() {
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let m = greedy_init(&g);
        assert_eq!(m.cardinality(), 2);
        certify_maximum(&g, &m).unwrap();
    }

    #[test]
    fn cover_check_detects_uncovered_edge() {
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let cover = VertexCover { left: vec![0], right: vec![] };
        assert!(!cover.covers(&g));
        let cover = VertexCover { left: vec![0], right: vec![1] };
        assert!(cover.covers(&g));
    }

    #[test]
    fn deficient_graph_cover() {
        // Maximum matching 1, minimum cover 1 (R0).
        let g = Bipartite::from_edges(3, 1, &[(0, 0), (1, 0), (2, 0)]).unwrap();
        let m = mc21(&g);
        let cover = certify_maximum(&g, &m).unwrap();
        assert_eq!(cover.size(), 1);
        assert_eq!(cover.right, vec![0]);
    }
}
