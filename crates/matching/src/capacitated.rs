//! Capacitated bipartite assignment: matchings in the deadline graph `G_D`.
//!
//! The paper's exact algorithm for `SINGLEPROC-UNIT` (§IV-A) asks for a
//! maximum matching in `G_D`, the graph with `D` copies of every processor.
//! A matching in `G_D` covering all tasks is exactly an assignment of each
//! task to an eligible processor in which no processor receives more than
//! `D` tasks. We solve this directly as a max-flow problem with processor
//! capacities (see [`crate::flow`]), avoiding the `D`-fold blowup;
//! [`crate::replicate`] keeps the explicit construction as a cross-check.

use semimatch_graph::Bipartite;

use crate::matching::NONE;
use crate::workspace::SearchWorkspace;

/// Result of a capacitated assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Processor assigned to each task, or [`NONE`] for unassigned tasks.
    pub task_to_proc: Vec<u32>,
    /// Number of tasks assigned to each processor.
    pub loads: Vec<u32>,
}

impl Assignment {
    /// Number of assigned tasks.
    pub fn cardinality(&self) -> usize {
        self.task_to_proc.iter().filter(|&&p| p != NONE).count()
    }

    /// True when every task is assigned.
    pub fn is_complete(&self) -> bool {
        self.task_to_proc.iter().all(|&p| p != NONE)
    }

    /// Largest processor load.
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Checks structural consistency against the instance graph and a
    /// uniform capacity.
    pub fn validate(&self, g: &Bipartite, capacity: u32) -> Result<(), String> {
        if self.task_to_proc.len() != g.n_left() as usize
            || self.loads.len() != g.n_right() as usize
        {
            return Err("assignment length mismatch".into());
        }
        let mut loads = vec![0u32; g.n_right() as usize];
        for (v, &p) in self.task_to_proc.iter().enumerate() {
            if p == NONE {
                continue;
            }
            if g.neighbors(v as u32).binary_search(&p).is_err() {
                return Err(format!("task {v} assigned to non-eligible processor {p}"));
            }
            loads[p as usize] += 1;
        }
        if loads != self.loads {
            return Err("stored loads are stale".into());
        }
        if let Some(u) = loads.iter().position(|&l| l > capacity) {
            return Err(format!("processor {u} exceeds capacity: {} > {capacity}", loads[u]));
        }
        Ok(())
    }
}

/// Maximum-cardinality assignment with uniform processor capacity.
///
/// Returns the largest set of tasks that can be placed so that every
/// processor serves at most `capacity` tasks. Runs Dinic's algorithm on the
/// unit-task flow network, `O(|E|·√|V|)`-ish in practice. No per-processor
/// capacity array is materialized for the uniform case.
pub fn max_assignment(g: &Bipartite, capacity: u32) -> Assignment {
    max_assignment_in(g, capacity, &mut SearchWorkspace::new())
}

/// [`max_assignment`] building the flow network inside a reusable
/// workspace arena. Warm repeated solves (the deadline-search inner loop)
/// allocate only the returned [`Assignment`].
pub fn max_assignment_in(g: &Bipartite, capacity: u32, ws: &mut SearchWorkspace) -> Assignment {
    solve_flow(g, |_| capacity as u64, ws)
}

/// Maximum-cardinality assignment with per-processor capacities.
pub fn max_assignment_with_capacities(g: &Bipartite, capacities: &[u32]) -> Assignment {
    max_assignment_with_capacities_in(g, capacities, &mut SearchWorkspace::new())
}

/// [`max_assignment_with_capacities`] on a reusable workspace arena.
pub fn max_assignment_with_capacities_in(
    g: &Bipartite,
    capacities: &[u32],
    ws: &mut SearchWorkspace,
) -> Assignment {
    assert_eq!(capacities.len(), g.n_right() as usize, "one capacity per processor");
    solve_flow(g, |u| capacities[u as usize] as u64, ws)
}

/// Shared flow formulation over any capacity provider (uniform capacities
/// need no backing slice). Nodes: source 0, tasks `1..=n1`, processors
/// `n1+1..=n1+n2`, sink `n1+n2+1`.
fn solve_flow(
    g: &Bipartite,
    capacity_of: impl Fn(u32) -> u64,
    ws: &mut SearchWorkspace,
) -> Assignment {
    let n1 = g.n_left();
    let n2 = g.n_right();
    let source = 0u32;
    let task_base = 1u32;
    let proc_base = 1 + n1;
    let sink = 1 + n1 + n2;
    let (net, edge_arcs) = ws.flow_arena(sink as usize + 1);

    for v in 0..n1 {
        net.add_arc(source, task_base + v, 1);
    }
    // Record the arc id of every task→processor arc for extraction.
    for v in 0..n1 {
        for &u in g.neighbors(v) {
            edge_arcs.push(net.add_arc(task_base + v, proc_base + u, 1));
        }
    }
    for u in 0..n2 {
        let c = capacity_of(u);
        if c > 0 {
            net.add_arc(proc_base + u, sink, c);
        }
    }
    net.max_flow(source, sink);

    let mut task_to_proc = vec![NONE; n1 as usize];
    let mut loads = vec![0u32; n2 as usize];
    let mut k = 0usize;
    for v in 0..n1 {
        for &u in g.neighbors(v) {
            if net.flow(edge_arcs[k]) > 0 {
                task_to_proc[v as usize] = u;
                loads[u as usize] += 1;
            }
            k += 1;
        }
    }
    Assignment { task_to_proc, loads }
}

/// Warm capacity-probe session state: which subinstance build the resident
/// flow network reflects, the capacity its sink arcs currently carry, the
/// flow value it holds, and an optional checkpoint to roll back to.
///
/// The FLN-style exact search probes a sequence of uniform capacities
/// against the same (sub)instance. A cold probe rebuilds and re-solves the
/// whole network (`O(m·√n)` each); a warm session keeps one resident
/// network **per monotone probe direction** — the *raising* direction. A
/// probe above the session's capacity widens the sink arcs in place and
/// augments only the delta along short residual paths; a probe below it
/// would have to cancel a near-maximum flow and re-augment through long
/// residual paths (many full-graph BFS phases — measurably worse than the
/// rebuild), so the session never lowers: callers
/// [checkpoint](probe_checkpoint) before a speculative raise and
/// [roll back](probe_rollback) to keep the session anchored at the highest
/// *infeasible* capacity, and a probe that still lands below the anchor
/// rebuilds. The state is a plain value so parallel probe slots can move
/// it through a work-stealing pool together with their workspace.
#[derive(Clone, Debug, Default)]
pub struct ProbeState {
    /// Subinstance epoch the resident network was built for; `None` until
    /// the first build.
    epoch: Option<u64>,
    /// Flow value (assigned active tasks) currently routed.
    value: u64,
    /// Uniform capacity the resident network's sink arcs currently carry.
    cap: u32,
    /// Checkpointed residual state ([`probe_checkpoint`]).
    saved: Vec<u64>,
    /// Flow value at the checkpoint.
    saved_value: u64,
    /// Sink capacity at the checkpoint.
    saved_cap: u32,
}

impl ProbeState {
    /// Whether the resident network reflects subinstance build `epoch`
    /// (the next [`warm_probe_in`] at a capacity at or above the session's
    /// will edit it in place rather than rebuild).
    pub fn is_warm(&self, epoch: u64) -> bool {
        self.epoch == Some(epoch)
    }

    /// The uniform sink capacity the resident network currently carries.
    pub fn capacity(&self) -> u32 {
        self.cap
    }
}

/// One uniform-capacity feasibility probe over the active subinstance
/// `(tasks, procs)`, warm-started from whatever the resident network in
/// `ws` holds. Returns the maximum number of active tasks assignable with
/// every active processor serving at most `capacity` tasks.
///
/// * `tasks` / `procs` — original vertex ids of the active subinstance.
/// * `proc_pos[u]` — position of original processor `u` in `procs`, or
///   [`NONE`] when `u` is inactive (edges to inactive processors are
///   excluded from the network).
/// * `epoch` — identity of the subinstance build. When it matches the one
///   recorded in `st` **and** `capacity` is at or above the session's, the
///   network is kept: the sink arcs are raised in place and only the delta
///   is augmented. Otherwise (new build, or a probe below the session —
///   the expensive direction, see [`ProbeState`]) the arena is rebuilt
///   from scratch.
///
/// Processor→sink arcs are materialized for *every* active processor (the
/// cold path elides zero-capacity arcs; a warm session cannot, since a
/// later probe may raise them). Call [`extract_probe_in`] afterwards to
/// read the assignment out of the resident network.
#[allow(clippy::too_many_arguments)]
pub fn warm_probe_in(
    g: &Bipartite,
    tasks: &[u32],
    procs: &[u32],
    proc_pos: &[u32],
    epoch: u64,
    capacity: u32,
    st: &mut ProbeState,
    ws: &mut SearchWorkspace,
) -> u64 {
    let nt = tasks.len() as u32;
    let np = procs.len() as u32;
    let source = 0u32;
    let task_base = 1u32;
    let proc_base = 1 + nt;
    let sink = 1 + nt + np;
    if st.epoch != Some(epoch) || capacity < st.cap {
        // Cold build of the subinstance view (also the escape hatch for a
        // probe below the session capacity: cancelling a routed flow
        // re-augments through long residual paths and costs more than the
        // rebuild).
        let (net, edge_arcs, proc_arcs) = ws.probe_arena(sink as usize + 1);
        for i in 0..nt {
            net.add_arc(source, task_base + i, 1);
        }
        for (i, &v) in tasks.iter().enumerate() {
            for &u in g.neighbors(v) {
                if proc_pos[u as usize] == NONE {
                    continue;
                }
                edge_arcs.push(net.add_arc(
                    task_base + i as u32,
                    proc_base + proc_pos[u as usize],
                    1,
                ));
            }
        }
        for j in 0..np {
            proc_arcs.push(net.add_arc(proc_base + j, sink, capacity as u64));
        }
        st.epoch = Some(epoch);
        st.cap = capacity;
        st.value = net.max_flow(source, sink);
        return st.value;
    }
    // Warm path: raise the sink capacities in place and augment the delta.
    // From an anchor that was *infeasible* the new headroom sits one hop
    // from the sink, so the augmenting paths are short.
    for j in 0..np as usize {
        ws.flow.raise_capacity(ws.proc_arcs[j], capacity as u64);
    }
    st.cap = capacity;
    st.value += ws.flow.max_flow(source, sink);
    st.value
}

/// Checkpoints the resident probe session (`O(arcs)` copy of the residual
/// state): call before a speculative [`warm_probe_in`] raise, and
/// [`probe_rollback`] to return to the anchor if the probe came back
/// feasible. See [`ProbeState`] for why the session only moves up.
pub fn probe_checkpoint(st: &mut ProbeState, ws: &SearchWorkspace) {
    ws.flow.save_flow(&mut st.saved);
    st.saved_value = st.value;
    st.saved_cap = st.cap;
}

/// Rolls the resident probe session back to the last
/// [`probe_checkpoint`]. The subinstance build must be unchanged since the
/// checkpoint (same epoch — the arc set is identical).
pub fn probe_rollback(st: &mut ProbeState, ws: &mut SearchWorkspace) {
    ws.flow.restore_flow(&st.saved);
    st.value = st.saved_value;
    st.cap = st.saved_cap;
}

/// Reads the assignment of the last [`warm_probe_in`] out of the resident
/// network, writing original processor ids (or [`NONE`]) into
/// `out[original task id]` for every active task. Inactive tasks are left
/// untouched.
pub fn extract_probe_in(
    g: &Bipartite,
    tasks: &[u32],
    proc_pos: &[u32],
    out: &mut [u32],
    ws: &SearchWorkspace,
) {
    let mut k = 0usize;
    for &v in tasks {
        out[v as usize] = NONE;
        for &u in g.neighbors(v) {
            if proc_pos[u as usize] == NONE {
                continue;
            }
            if ws.flow.flow(ws.edge_arcs[k]) > 0 {
                out[v as usize] = u;
            }
            k += 1;
        }
    }
}

/// Complete assignment minimizing the *balanced* convex cost
/// `Σ_u l(u)·(l(u)+1)/2` (the unit flow-time), via one min-cost max-flow
/// with convex unit-arc bundles: processor `u` offers `min(deg(u), n)`
/// sink arcs with marginals `1, 2, 3, …`, so the `k`-th task on a
/// processor costs `k`. A balanced (majorization-minimal) assignment is
/// simultaneously optimal for every symmetric convex objective *and* the
/// makespan (Harvey et al.), which is what makes this the one-shot exact
/// backend for unit instances.
///
/// Tasks that cannot be assigned (isolated vertices) stay [`NONE`]; the
/// routed flow is maximum, so the assignment is complete whenever the
/// instance is coverable.
pub fn balanced_assignment_in(g: &Bipartite, ws: &mut SearchWorkspace) -> Assignment {
    let n1 = g.n_left();
    min_cost_flow_assignment(g, ws, |_| 0, |u| SinkShape::Convex(g.deg_right(u).min(n1)))
}

/// Complete assignment minimizing the total *weighted* load
/// `Σ_t w(t, proc(t))` — the exact optimum of
/// `Objective::WeightedLoad` on weighted instances — via one min-cost
/// max-flow with linear edge costs and uncapacitated sinks.
pub fn min_weight_assignment_in(g: &Bipartite, ws: &mut SearchWorkspace) -> Assignment {
    let n1 = g.n_left();
    min_cost_flow_assignment(g, ws, |e| g.weight(e) as i128, |_| SinkShape::Free(n1 as u64))
}

/// Sink-arc shape for [`min_cost_flow_assignment`].
enum SinkShape {
    /// `k` unit arcs with marginals `1, 2, …, k`.
    Convex(u32),
    /// One free arc of the given capacity.
    Free(u64),
}

/// Shared min-cost formulation: unit source and edge arcs (edge cost from
/// `edge_cost` by edge id), sink arcs shaped per processor by `sink_of`.
fn min_cost_flow_assignment(
    g: &Bipartite,
    ws: &mut SearchWorkspace,
    edge_cost: impl Fn(u32) -> i128,
    sink_of: impl Fn(u32) -> SinkShape,
) -> Assignment {
    let n1 = g.n_left();
    let n2 = g.n_right();
    let source = 0u32;
    let task_base = 1u32;
    let proc_base = 1 + n1;
    let sink = 1 + n1 + n2;
    let (net, edge_arcs) = ws.flow_arena(sink as usize + 1);

    for v in 0..n1 {
        net.add_arc(source, task_base + v, 1);
    }
    for v in 0..n1 {
        for e in g.edge_range(v) {
            let u = g.edge_right(e);
            edge_arcs.push(net.add_arc_with_cost(task_base + v, proc_base + u, 1, edge_cost(e)));
        }
    }
    for u in 0..n2 {
        match sink_of(u) {
            SinkShape::Convex(units) => {
                for k in 1..=units as i128 {
                    net.add_arc_with_cost(proc_base + u, sink, 1, k);
                }
            }
            SinkShape::Free(cap) => {
                net.add_arc(proc_base + u, sink, cap);
            }
        }
    }
    net.min_cost_max_flow(source, sink);

    let mut task_to_proc = vec![NONE; n1 as usize];
    let mut loads = vec![0u32; n2 as usize];
    let mut k = 0usize;
    for v in 0..n1 {
        for &u in g.neighbors(v) {
            if net.flow(edge_arcs[k]) > 0 {
                task_to_proc[v as usize] = u;
                loads[u as usize] += 1;
            }
            k += 1;
        }
    }
    Assignment { task_to_proc, loads }
}

/// True when all tasks fit under the uniform `capacity` (i.e. `G_D` with
/// `D = capacity` admits a matching covering `V1`).
pub fn feasible(g: &Bipartite, capacity: u32) -> bool {
    max_assignment(g, capacity).is_complete()
}

/// [`feasible`] on a reusable workspace arena.
pub fn feasible_in(g: &Bipartite, capacity: u32, ws: &mut SearchWorkspace) -> bool {
    max_assignment_in(g, capacity, ws).is_complete()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_one_is_plain_matching() {
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let a = max_assignment(&g, 1);
        a.validate(&g, 1).unwrap();
        assert!(a.is_complete());
        assert_eq!(a.max_load(), 1);
    }

    #[test]
    fn capacity_bounds_processor_load() {
        // 5 tasks all eligible on P0 only.
        let g = Bipartite::from_edges(5, 1, &[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)]).unwrap();
        let a2 = max_assignment(&g, 2);
        a2.validate(&g, 2).unwrap();
        assert_eq!(a2.cardinality(), 2);
        let a5 = max_assignment(&g, 5);
        assert!(a5.is_complete());
        assert_eq!(a5.max_load(), 5);
    }

    #[test]
    fn feasibility_threshold() {
        // Fig. 3-like: optimal makespan is 1, so capacity 1 is feasible.
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        assert!(feasible(&g, 1));
        // Two tasks, one processor: needs capacity 2.
        let g = Bipartite::from_edges(2, 1, &[(0, 0), (1, 0)]).unwrap();
        assert!(!feasible(&g, 1));
        assert!(feasible(&g, 2));
    }

    #[test]
    fn per_processor_capacities() {
        // Tasks 0,1,2 all eligible on both processors; cap(P0)=1, cap(P1)=2.
        let g =
            Bipartite::from_edges(3, 2, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]).unwrap();
        let a = max_assignment_with_capacities(&g, &[1, 2]);
        assert!(a.is_complete());
        assert!(a.loads[0] <= 1);
        assert!(a.loads[1] <= 2);
    }

    #[test]
    fn zero_capacity_processor_unused() {
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]).unwrap();
        let a = max_assignment_with_capacities(&g, &[0, 5]);
        assert_eq!(a.loads[0], 0);
        assert_eq!(a.cardinality(), 1); // only task 1 can go (to P1)
    }

    #[test]
    fn isolated_task_stays_unassigned() {
        let g = Bipartite::from_edges(3, 2, &[(0, 0), (2, 1)]).unwrap();
        let a = max_assignment(&g, 3);
        assert_eq!(a.task_to_proc[1], NONE);
        assert_eq!(a.cardinality(), 2);
    }

    #[test]
    fn warm_probes_agree_with_cold_solves() {
        // 6 tasks over 3 procs, mixed degrees; sweep capacities up and down
        // through one warm session and cross-check every answer cold.
        let g = Bipartite::from_edges(
            6,
            3,
            &[(0, 0), (0, 1), (1, 0), (2, 1), (2, 2), (3, 0), (3, 2), (4, 1), (5, 2), (5, 0)],
        )
        .unwrap();
        let tasks: Vec<u32> = (0..6).collect();
        let procs: Vec<u32> = (0..3).collect();
        let proc_pos: Vec<u32> = (0..3).collect();
        let mut st = ProbeState::default();
        let mut ws = SearchWorkspace::new();
        let mut cold_ws = SearchWorkspace::new();
        for cap in [1u32, 3, 2, 1, 4, 2] {
            let warm = warm_probe_in(&g, &tasks, &procs, &proc_pos, 7, cap, &mut st, &mut ws);
            let cold = max_assignment_in(&g, cap, &mut cold_ws).cardinality() as u64;
            assert_eq!(warm, cold, "capacity {cap}");
            // The extracted assignment is consistent with the probe value.
            let mut out = vec![NONE; 6];
            extract_probe_in(&g, &tasks, &proc_pos, &mut out, &ws);
            assert_eq!(out.iter().filter(|&&p| p != NONE).count() as u64, warm);
            let mut loads = [0u32; 3];
            for (v, &p) in out.iter().enumerate() {
                if p != NONE {
                    assert!(g.neighbors(v as u32).contains(&p));
                    loads[p as usize] += 1;
                }
            }
            assert!(loads.iter().all(|&l| l <= cap));
        }
    }

    #[test]
    fn warm_probe_rebuilds_on_epoch_change() {
        let g = Bipartite::from_edges(4, 2, &[(0, 0), (1, 0), (2, 1), (3, 1), (3, 0)]).unwrap();
        let mut st = ProbeState::default();
        let mut ws = SearchWorkspace::new();
        let all: Vec<u32> = (0..4).collect();
        let full = warm_probe_in(&g, &all, &[0, 1], &[0, 1], 0, 2, &mut st, &mut ws);
        assert_eq!(full, 4);
        // Shrink to the subinstance {tasks 2,3} × {proc 1}: epoch bump
        // forces a rebuild over the active view only.
        let sub = warm_probe_in(&g, &[2, 3], &[1], &[NONE, 0], 1, 1, &mut st, &mut ws);
        assert_eq!(sub, 1, "proc 1 alone serves one of the two tasks at cap 1");
        let mut out = vec![NONE; 4];
        extract_probe_in(&g, &[2, 3], &[NONE, 0], &mut out, &ws);
        assert_eq!(out[..2], [NONE, NONE], "inactive tasks untouched");
        assert_eq!(out[2..].iter().filter(|&&p| p == 1).count(), 1);
    }

    #[test]
    fn warm_probe_materializes_every_sink_arc() {
        // A processor with no capacity headroom at the first probe must
        // still be raisable later — the regression the warm session guards.
        let g = Bipartite::from_edges(2, 1, &[(0, 0), (1, 0)]).unwrap();
        let mut st = ProbeState::default();
        let mut ws = SearchWorkspace::new();
        assert_eq!(warm_probe_in(&g, &[0, 1], &[0], &[0], 0, 1, &mut st, &mut ws), 1);
        assert_eq!(warm_probe_in(&g, &[0, 1], &[0], &[0], 0, 2, &mut st, &mut ws), 2);
    }

    #[test]
    fn balanced_assignment_is_majorization_minimal() {
        // 4 tasks, 2 procs, everything eligible: the balanced optimum is
        // 2/2, never 3/1.
        let g = Bipartite::from_edges(
            4,
            2,
            &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1), (3, 0), (3, 1)],
        )
        .unwrap();
        let a = balanced_assignment_in(&g, &mut SearchWorkspace::new());
        assert!(a.is_complete());
        assert_eq!(a.loads, vec![2, 2]);
    }

    #[test]
    fn min_weight_assignment_takes_cheap_edges() {
        // Both tasks prefer P0 by weight; sinks are uncapacitated so both
        // land there.
        let g = Bipartite::from_weighted_edges(
            2,
            2,
            &[(0, 0), (0, 1), (1, 0), (1, 1)],
            &[1, 10, 2, 10],
        )
        .unwrap();
        let a = min_weight_assignment_in(&g, &mut SearchWorkspace::new());
        assert!(a.is_complete());
        assert_eq!(a.task_to_proc, vec![0, 0]);
    }

    #[test]
    fn validate_catches_stale_loads() {
        let g = Bipartite::from_edges(1, 1, &[(0, 0)]).unwrap();
        let mut a = max_assignment(&g, 1);
        a.loads[0] = 9;
        assert!(a.validate(&g, 1).is_err());
    }
}
