//! Capacitated bipartite assignment: matchings in the deadline graph `G_D`.
//!
//! The paper's exact algorithm for `SINGLEPROC-UNIT` (§IV-A) asks for a
//! maximum matching in `G_D`, the graph with `D` copies of every processor.
//! A matching in `G_D` covering all tasks is exactly an assignment of each
//! task to an eligible processor in which no processor receives more than
//! `D` tasks. We solve this directly as a max-flow problem with processor
//! capacities (see [`crate::flow`]), avoiding the `D`-fold blowup;
//! [`crate::replicate`] keeps the explicit construction as a cross-check.

use semimatch_graph::Bipartite;

use crate::matching::NONE;
use crate::workspace::SearchWorkspace;

/// Result of a capacitated assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Processor assigned to each task, or [`NONE`] for unassigned tasks.
    pub task_to_proc: Vec<u32>,
    /// Number of tasks assigned to each processor.
    pub loads: Vec<u32>,
}

impl Assignment {
    /// Number of assigned tasks.
    pub fn cardinality(&self) -> usize {
        self.task_to_proc.iter().filter(|&&p| p != NONE).count()
    }

    /// True when every task is assigned.
    pub fn is_complete(&self) -> bool {
        self.task_to_proc.iter().all(|&p| p != NONE)
    }

    /// Largest processor load.
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Checks structural consistency against the instance graph and a
    /// uniform capacity.
    pub fn validate(&self, g: &Bipartite, capacity: u32) -> Result<(), String> {
        if self.task_to_proc.len() != g.n_left() as usize
            || self.loads.len() != g.n_right() as usize
        {
            return Err("assignment length mismatch".into());
        }
        let mut loads = vec![0u32; g.n_right() as usize];
        for (v, &p) in self.task_to_proc.iter().enumerate() {
            if p == NONE {
                continue;
            }
            if g.neighbors(v as u32).binary_search(&p).is_err() {
                return Err(format!("task {v} assigned to non-eligible processor {p}"));
            }
            loads[p as usize] += 1;
        }
        if loads != self.loads {
            return Err("stored loads are stale".into());
        }
        if let Some(u) = loads.iter().position(|&l| l > capacity) {
            return Err(format!("processor {u} exceeds capacity: {} > {capacity}", loads[u]));
        }
        Ok(())
    }
}

/// Maximum-cardinality assignment with uniform processor capacity.
///
/// Returns the largest set of tasks that can be placed so that every
/// processor serves at most `capacity` tasks. Runs Dinic's algorithm on the
/// unit-task flow network, `O(|E|·√|V|)`-ish in practice. No per-processor
/// capacity array is materialized for the uniform case.
pub fn max_assignment(g: &Bipartite, capacity: u32) -> Assignment {
    max_assignment_in(g, capacity, &mut SearchWorkspace::new())
}

/// [`max_assignment`] building the flow network inside a reusable
/// workspace arena. Warm repeated solves (the deadline-search inner loop)
/// allocate only the returned [`Assignment`].
pub fn max_assignment_in(g: &Bipartite, capacity: u32, ws: &mut SearchWorkspace) -> Assignment {
    solve_flow(g, |_| capacity as u64, ws)
}

/// Maximum-cardinality assignment with per-processor capacities.
pub fn max_assignment_with_capacities(g: &Bipartite, capacities: &[u32]) -> Assignment {
    max_assignment_with_capacities_in(g, capacities, &mut SearchWorkspace::new())
}

/// [`max_assignment_with_capacities`] on a reusable workspace arena.
pub fn max_assignment_with_capacities_in(
    g: &Bipartite,
    capacities: &[u32],
    ws: &mut SearchWorkspace,
) -> Assignment {
    assert_eq!(capacities.len(), g.n_right() as usize, "one capacity per processor");
    solve_flow(g, |u| capacities[u as usize] as u64, ws)
}

/// Shared flow formulation over any capacity provider (uniform capacities
/// need no backing slice). Nodes: source 0, tasks `1..=n1`, processors
/// `n1+1..=n1+n2`, sink `n1+n2+1`.
fn solve_flow(
    g: &Bipartite,
    capacity_of: impl Fn(u32) -> u64,
    ws: &mut SearchWorkspace,
) -> Assignment {
    let n1 = g.n_left();
    let n2 = g.n_right();
    let source = 0u32;
    let task_base = 1u32;
    let proc_base = 1 + n1;
    let sink = 1 + n1 + n2;
    let (net, edge_arcs) = ws.flow_arena(sink as usize + 1);

    for v in 0..n1 {
        net.add_arc(source, task_base + v, 1);
    }
    // Record the arc id of every task→processor arc for extraction.
    for v in 0..n1 {
        for &u in g.neighbors(v) {
            edge_arcs.push(net.add_arc(task_base + v, proc_base + u, 1));
        }
    }
    for u in 0..n2 {
        let c = capacity_of(u);
        if c > 0 {
            net.add_arc(proc_base + u, sink, c);
        }
    }
    net.max_flow(source, sink);

    let mut task_to_proc = vec![NONE; n1 as usize];
    let mut loads = vec![0u32; n2 as usize];
    let mut k = 0usize;
    for v in 0..n1 {
        for &u in g.neighbors(v) {
            if net.flow(edge_arcs[k]) > 0 {
                task_to_proc[v as usize] = u;
                loads[u as usize] += 1;
            }
            k += 1;
        }
    }
    Assignment { task_to_proc, loads }
}

/// True when all tasks fit under the uniform `capacity` (i.e. `G_D` with
/// `D = capacity` admits a matching covering `V1`).
pub fn feasible(g: &Bipartite, capacity: u32) -> bool {
    max_assignment(g, capacity).is_complete()
}

/// [`feasible`] on a reusable workspace arena.
pub fn feasible_in(g: &Bipartite, capacity: u32, ws: &mut SearchWorkspace) -> bool {
    max_assignment_in(g, capacity, ws).is_complete()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_one_is_plain_matching() {
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let a = max_assignment(&g, 1);
        a.validate(&g, 1).unwrap();
        assert!(a.is_complete());
        assert_eq!(a.max_load(), 1);
    }

    #[test]
    fn capacity_bounds_processor_load() {
        // 5 tasks all eligible on P0 only.
        let g = Bipartite::from_edges(5, 1, &[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)]).unwrap();
        let a2 = max_assignment(&g, 2);
        a2.validate(&g, 2).unwrap();
        assert_eq!(a2.cardinality(), 2);
        let a5 = max_assignment(&g, 5);
        assert!(a5.is_complete());
        assert_eq!(a5.max_load(), 5);
    }

    #[test]
    fn feasibility_threshold() {
        // Fig. 3-like: optimal makespan is 1, so capacity 1 is feasible.
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        assert!(feasible(&g, 1));
        // Two tasks, one processor: needs capacity 2.
        let g = Bipartite::from_edges(2, 1, &[(0, 0), (1, 0)]).unwrap();
        assert!(!feasible(&g, 1));
        assert!(feasible(&g, 2));
    }

    #[test]
    fn per_processor_capacities() {
        // Tasks 0,1,2 all eligible on both processors; cap(P0)=1, cap(P1)=2.
        let g =
            Bipartite::from_edges(3, 2, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]).unwrap();
        let a = max_assignment_with_capacities(&g, &[1, 2]);
        assert!(a.is_complete());
        assert!(a.loads[0] <= 1);
        assert!(a.loads[1] <= 2);
    }

    #[test]
    fn zero_capacity_processor_unused() {
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]).unwrap();
        let a = max_assignment_with_capacities(&g, &[0, 5]);
        assert_eq!(a.loads[0], 0);
        assert_eq!(a.cardinality(), 1); // only task 1 can go (to P1)
    }

    #[test]
    fn isolated_task_stays_unassigned() {
        let g = Bipartite::from_edges(3, 2, &[(0, 0), (2, 1)]).unwrap();
        let a = max_assignment(&g, 3);
        assert_eq!(a.task_to_proc[1], NONE);
        assert_eq!(a.cardinality(), 2);
    }

    #[test]
    fn validate_catches_stale_loads() {
        let g = Bipartite::from_edges(1, 1, &[(0, 0)]).unwrap();
        let mut a = max_assignment(&g, 1);
        a.loads[0] = 9;
        assert!(a.validate(&g, 1).is_err());
    }
}
