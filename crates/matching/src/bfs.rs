//! BFS-based augmenting path algorithm (PFP style).
//!
//! One breadth-first search per exposed left vertex, as in the PFP variant
//! surveyed by Duff, Kaya, Uçar (TOMS 2011). BFS finds *shortest*
//! augmenting paths, which keeps augmentations cheap on the shallow random
//! graphs used in the paper's experiments.

use semimatch_graph::Bipartite;

use crate::greedy::greedy_init;
use crate::matching::{Matching, NONE};
use crate::workspace::SearchWorkspace;

/// Maximum matching by per-vertex BFS augmentation from a greedy start.
pub fn pfp(g: &Bipartite) -> Matching {
    pfp_from(g, greedy_init(g))
}

/// Maximum matching by per-vertex BFS augmentation from a given matching.
pub fn pfp_from(g: &Bipartite, m: Matching) -> Matching {
    pfp_from_in(g, m, &mut SearchWorkspace::new())
}

/// [`pfp_from`] drawing all scratch from a reusable workspace: stamped
/// visited marks, `pred` pointers and the BFS queue. Allocation-free once
/// `ws` has seen the graph's dimensions.
pub fn pfp_from_in(g: &Bipartite, mut m: Matching, ws: &mut SearchWorkspace) -> Matching {
    let n1 = g.n_left() as usize;
    ws.reserve(g.n_left(), g.n_right());

    for v0 in 0..n1 {
        if m.mate_left[v0] != NONE {
            continue;
        }
        let stamp = ws.next_stamp();
        ws.queue.clear();
        ws.queue.push(v0 as u32);
        let mut head = 0;
        let mut free_u: Option<u32> = None;

        'bfs: while head < ws.queue.len() {
            let v = ws.queue[head];
            head += 1;
            for &u in g.neighbors(v) {
                if ws.visited[u as usize] == stamp {
                    continue;
                }
                ws.visited[u as usize] = stamp;
                ws.pred[u as usize] = v; // left vertex that discovered u
                let w = m.mate_right[u as usize];
                if w == NONE {
                    free_u = Some(u);
                    break 'bfs;
                }
                ws.queue.push(w);
            }
        }

        if let Some(mut u) = free_u {
            // Flip the path backwards via pred pointers.
            loop {
                let v = ws.pred[u as usize];
                let prev_u = m.mate_left[v as usize];
                m.mate_left[v as usize] = u;
                m.mate_right[u as usize] = v;
                if prev_u == NONE {
                    break;
                }
                u = prev_u;
            }
        }
    }
    m
}

#[cfg(test)]
#[allow(clippy::type_complexity)] // edge-list test fixtures
mod tests {
    use super::*;
    use crate::dfs::mc21;

    #[test]
    fn agrees_with_dfs_on_small_graphs() {
        let cases: Vec<(u32, u32, Vec<(u32, u32)>)> = vec![
            (2, 2, vec![(0, 0), (0, 1), (1, 0)]),
            (3, 3, vec![(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]),
            (4, 2, vec![(0, 0), (1, 0), (2, 1), (3, 1)]),
            (3, 1, vec![(0, 0), (1, 0), (2, 0)]),
        ];
        for (n1, n2, edges) in cases {
            let g = Bipartite::from_edges(n1, n2, &edges).unwrap();
            let a = pfp(&g);
            let b = mc21(&g);
            a.validate(&g).unwrap();
            assert_eq!(a.cardinality(), b.cardinality(), "edges {edges:?}");
        }
    }

    #[test]
    fn augments_through_long_chain() {
        let k = 64u32;
        let mut edges = Vec::new();
        for i in 0..k {
            edges.push((i, i));
            edges.push((i, i + 1));
        }
        edges.push((k, 0));
        let g = Bipartite::from_edges(k + 1, k + 1, &edges).unwrap();
        let m = pfp(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.cardinality(), (k + 1) as usize);
    }

    #[test]
    fn starts_from_supplied_matching() {
        let g = Bipartite::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let mut init = Matching::empty(2, 2);
        init.couple(1, 0);
        let m = pfp_from(&g, init);
        m.validate(&g).unwrap();
        assert_eq!(m.cardinality(), 2);
        assert_eq!(m.mate_left[1], 0, "existing pair is preserved");
    }

    #[test]
    fn empty_graph() {
        let g = Bipartite::from_edges(0, 0, &[]).unwrap();
        assert_eq!(pfp(&g).cardinality(), 0);
    }
}
