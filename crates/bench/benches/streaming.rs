//! Streaming throughput: incremental repair vs full re-solve per event.
//!
//! The serving engine's reason to exist is that repairing a live
//! assignment costs far less than re-solving the instance per event. This
//! bench replays the same generated traces — at churn rates 1%, 10% and
//! 50% — under three regimes and reports whole-replay times (events/sec =
//! trace length / time):
//!
//! * `incremental` — eager augmenting/local-search repair after every
//!   event;
//! * `lazy` — repair only past a bottleneck slack (the cheap middle
//!   ground);
//! * `rescratch` — a from-scratch `SolverKind` re-solve per event
//!   (`Periodic { every: 1 }`), the baseline a batch solver would pay.
//!
//! Registered alongside `repeat_solve`, which measures the same
//! amortization story one layer down (workspace reuse across solves).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semimatch_gen::rng::Xoshiro256;
use semimatch_gen::trace::{generate_trace, Trace, TraceParams};
use semimatch_serve::{Engine, EngineConfig, RepairPolicy};

/// A weighted hypergraph trace at the given churn percentage.
fn trace_at(churn_pct: u32, arrivals: u32) -> Trace {
    let params = TraceParams {
        n_procs: 64,
        arrivals,
        churn_pct,
        max_configs: 4,
        max_pins: 3,
        max_weight: 16,
        proc_events: 8,
        burst_every: 64,
        burst_len: 8,
    };
    generate_trace(&params, &mut Xoshiro256::seed_from_u64(2024))
}

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming-events");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for churn in [1u32, 10, 50] {
        let trace = trace_at(churn, 1500);
        let label = format!("churn-{churn}pct");
        let regimes: [(&str, EngineConfig); 3] = [
            ("incremental", EngineConfig::default()),
            (
                "lazy",
                EngineConfig { policy: RepairPolicy::Lazy { slack: 8 }, ..EngineConfig::default() },
            ),
            (
                "rescratch",
                EngineConfig {
                    policy: RepairPolicy::Periodic { every: 1 },
                    ..EngineConfig::default()
                },
            ),
        ];
        for (name, cfg) in regimes {
            group.bench_with_input(BenchmarkId::new(name, &label), &trace, |b, tr| {
                b.iter(|| {
                    let engine = Engine::replay(cfg, tr).expect("trace replays cleanly");
                    engine.bottleneck()
                })
            });
        }
    }
    group.finish();

    // Sharded repair on the same stream: per-shard local search with
    // skew-triggered rebalancing vs the single global shard.
    let mut group = c.benchmark_group("streaming-shards");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let trace = trace_at(10, 1500);
    for shards in [1u32, 4, 16] {
        let cfg = EngineConfig { shards, ..EngineConfig::default() };
        group.bench_with_input(BenchmarkId::from_parameter(shards), &trace, |b, tr| {
            b.iter(|| Engine::replay(cfg, tr).expect("trace replays cleanly").bottleneck())
        });
    }
    group.finish();

    // Sanity (run once, not timed): every regime ends on a valid
    // assignment of the same final instance, and repair never loses to
    // the no-repair baseline *on its own final state*.
    let trace = trace_at(10, 300);
    for cfg in [
        EngineConfig::default(),
        EngineConfig { policy: RepairPolicy::Periodic { every: 1 }, ..EngineConfig::default() },
        EngineConfig { shards: 4, ..EngineConfig::default() },
    ] {
        let engine = Engine::replay(cfg, &trace).expect("trace replays cleanly");
        let snap = engine.snapshot();
        snap.matching.validate(&snap.hypergraph).expect("valid final assignment");
        assert_eq!(snap.matching.makespan(&snap.hypergraph), engine.bottleneck());
    }
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
