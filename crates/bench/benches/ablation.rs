//! Design-choice ablations (DESIGN.md §6):
//!
//! * the naive `O(d_v |V2| log |V2|)` vector heuristics vs the
//!   sorted-list/multiset-difference variants sketched in §IV-D3 — the gap
//!   widens with `|V2|`;
//! * SGH's paper criterion (current load) vs the resulting-load variant;
//! * local-search refinement cost on top of a heuristic.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semimatch_core::hyper::evg::{expected_vector_greedy_hyp, expected_vector_greedy_hyp_naive};
use semimatch_core::hyper::sgh::{
    basic_greedy_hyp, sorted_greedy_hyp, sorted_greedy_hyp_resulting,
};
use semimatch_core::hyper::vgh::{
    vector_greedy_hyp, vector_greedy_hyp_naive, vector_greedy_hyp_pinwise,
};
use semimatch_core::refine::refine;
use semimatch_gen::params::{Config, Family};
use semimatch_gen::weights::WeightScheme;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    // Growing processor count at fixed n: the naive variants scale with
    // |V2|, the optimized ones with hyperedge sizes only.
    for p in [256u32, 1024, 4096] {
        let cfg = Config {
            family: Family::Fg,
            n: 2560,
            p,
            dv: 5,
            dh: 10,
            weights: WeightScheme::Related,
        };
        let h = cfg.instance(42, 0);
        group.bench_with_input(BenchmarkId::new("vgh-optimized", p), &h, |b, h| {
            b.iter(|| vector_greedy_hyp(h).unwrap().makespan(h))
        });
        group.bench_with_input(BenchmarkId::new("vgh-naive", p), &h, |b, h| {
            b.iter(|| vector_greedy_hyp_naive(h).unwrap().makespan(h))
        });
        group.bench_with_input(BenchmarkId::new("vgh-pinwise", p), &h, |b, h| {
            b.iter(|| vector_greedy_hyp_pinwise(h).unwrap().makespan(h))
        });
        group.bench_with_input(BenchmarkId::new("evg-optimized", p), &h, |b, h| {
            b.iter(|| expected_vector_greedy_hyp(h).unwrap().makespan(h))
        });
        group.bench_with_input(BenchmarkId::new("evg-naive", p), &h, |b, h| {
            b.iter(|| expected_vector_greedy_hyp_naive(h).unwrap().makespan(h))
        });
    }

    let cfg = Config {
        family: Family::Mg,
        n: 2560,
        p: 512,
        dv: 5,
        dh: 10,
        weights: WeightScheme::Related,
    };
    let h = cfg.instance(42, 0);
    group.bench_function("sgh-paper-criterion", |b| {
        b.iter(|| sorted_greedy_hyp(&h).unwrap().makespan(&h))
    });
    group.bench_function("sgh-resulting-criterion", |b| {
        b.iter(|| sorted_greedy_hyp_resulting(&h).unwrap().makespan(&h))
    });
    group.bench_function("bgh-no-sort", |b| b.iter(|| basic_greedy_hyp(&h).unwrap().makespan(&h)));
    group.bench_function("sgh-plus-refinement", |b| {
        b.iter(|| {
            let mut hm = sorted_greedy_hyp(&h).unwrap();
            refine(&h, &mut hm, 16).unwrap();
            hm.makespan(&h)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
