//! Repeat-solve amortization: cold per-call scratch vs workspace-reusing
//! batched solving.
//!
//! The serving scenario behind the `Solver` trait: the same solver runs
//! over a sweep of same-shaped instances (deadline probes, bench grids,
//! request traffic). "cold" re-allocates every engine's scratch per
//! instance (the stateless `solve` facade); "warm" drives the sweep through
//! `solve_many` / a reused `SearchWorkspace`, so scratch is allocated once
//! and reset in `O(active)` between runs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semimatch_core::exact::{cost_scaling_cold_in, cost_scaling_in};
use semimatch_core::objective::Objective;
use semimatch_core::solver::{solve, solve_many, Problem, Solver, SolverKind};
use semimatch_gen::rng::Xoshiro256;
use semimatch_gen::{fewg_manyg, hilo_permuted};
use semimatch_graph::Bipartite;
use semimatch_matching::{maximum_matching, maximum_matching_in, Algorithm, SearchWorkspace};

/// A sweep of same-shaped instances, alternating both bipartite families.
fn sweep(count: u64, n: u32, p: u32, g: u32, d: u32) -> Vec<Bipartite> {
    let root = Xoshiro256::seed_from_u64(42);
    (0..count)
        .map(|i| {
            let mut rng = root.stream(i);
            if i % 2 == 0 {
                hilo_permuted(n, p, g, d, &mut rng)
            } else {
                fewg_manyg(n, p, g, d, &mut rng)
            }
        })
        .collect()
}

fn bench_repeat_solve(c: &mut Criterion) {
    let instances = sweep(24, 2048, 128, 16, 6);
    let problems: Vec<Problem<'_>> = instances.iter().map(Problem::SingleProc).collect();
    let kinds = [
        SolverKind::ExactBisection,
        SolverKind::ExactReplicated,
        SolverKind::HopcroftKarpSemi,
        SolverKind::CostScaling,
        SolverKind::MinCostFlow,
    ];

    let mut group = c.benchmark_group("repeat-solve");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for kind in kinds {
        // Cold: the stateless facade, fresh scratch per instance.
        group.bench_with_input(BenchmarkId::new("cold", kind.name()), &problems, |b, ps| {
            b.iter(|| {
                ps.iter().map(|&p| solve(p, kind).unwrap().makespan(&p).unwrap()).sum::<u64>()
            })
        });
        // Warm: one workspace-backed solver serves the whole sweep.
        group.bench_with_input(BenchmarkId::new("warm", kind.name()), &problems, |b, ps| {
            b.iter(|| {
                let row: u64 = solve_many(ps, &[kind], Objective::Makespan)
                    .iter()
                    .zip(ps)
                    .map(|(r, p)| r[0].as_ref().unwrap().makespan(p).unwrap())
                    .sum();
                row
            })
        });
    }
    group.finish();

    // The same contrast one layer down, on the raw matching engines.
    let mut group = c.benchmark_group("repeat-matching");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for algo in [Algorithm::HopcroftKarp, Algorithm::PushRelabel] {
        group.bench_with_input(BenchmarkId::new("cold", algo.name()), &instances, |b, gs| {
            b.iter(|| gs.iter().map(|g| maximum_matching(g, algo).cardinality()).sum::<usize>())
        });
        group.bench_with_input(BenchmarkId::new("warm", algo.name()), &instances, |b, gs| {
            let mut ws = SearchWorkspace::new();
            b.iter(|| {
                gs.iter()
                    .map(|g| maximum_matching_in(g, algo, &mut ws).cardinality())
                    .sum::<usize>()
            })
        });
    }
    group.finish();

    // The fast-exact contrast: tall (n ≫ p) loose-bound unit instances
    // (g = 4, d = 2 skews eligibility, pushing the optimum well above the
    // ⌈n/p⌉ counting bound), where the generalized Hopcroft–Karp phases
    // skip the matching oracle entirely and the load-range
    // divide-and-conquer brackets with a greedy witness. Row pair recorded
    // in results/BENCH_fast_exact.md.
    let tall = sweep(16, 8192, 32, 4, 2);
    let tall_problems: Vec<Problem<'_>> = tall.iter().map(Problem::SingleProc).collect();
    let mut group = c.benchmark_group("fast-exact-tall");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for kind in kinds {
        group.bench_with_input(BenchmarkId::new("warm", kind.name()), &tall_problems, |b, ps| {
            b.iter(|| {
                let row: u64 = solve_many(ps, &[kind], Objective::Makespan)
                    .iter()
                    .zip(ps)
                    .map(|(r, p)| r[0].as_ref().unwrap().makespan(p).unwrap())
                    .sum();
                row
            })
        });
    }
    // The warm-started capacity probes against the cold ablation: same
    // divide-and-conquer, but "cold-probes" rebuilds the capacitated
    // network from scratch per probe where "warm-probes" retargets the
    // resident network's processor arcs and repairs the flow. Probe and
    // augmentation counters for the same contrast live in
    // results/BENCH_fast_exact.json (the fast_exact bin).
    group.bench_with_input(BenchmarkId::new("warm-probes", "cost-scaling"), &tall, |b, gs| {
        let mut ws = SearchWorkspace::new();
        b.iter(|| gs.iter().map(|g| cost_scaling_in(g, &mut ws).unwrap().makespan).sum::<u64>())
    });
    group.bench_with_input(BenchmarkId::new("cold-probes", "cost-scaling"), &tall, |b, gs| {
        let mut ws = SearchWorkspace::new();
        b.iter(|| {
            gs.iter().map(|g| cost_scaling_cold_in(g, &mut ws).unwrap().makespan).sum::<u64>()
        })
    });
    group.finish();

    // Sanity: warm and cold must agree bit-for-bit, and the fast exact
    // backends must land on the reference optimum (run once, not timed).
    let mut warm = SolverKind::ExactBisection.solver();
    for &p in &problems[..4] {
        assert_eq!(warm.solve(p).unwrap(), solve(p, SolverKind::ExactBisection).unwrap());
    }
    for (g, &p) in tall.iter().zip(&tall_problems).take(2) {
        let opt = solve(p, SolverKind::ExactBisection).unwrap().makespan(&p).unwrap();
        for kind in [SolverKind::HopcroftKarpSemi, SolverKind::CostScaling, SolverKind::MinCostFlow]
        {
            assert_eq!(solve(p, kind).unwrap().makespan(&p).unwrap(), opt, "{kind} missed opt");
        }
        let mut ws = SearchWorkspace::new();
        assert_eq!(cost_scaling_in(g, &mut ws).unwrap().makespan, opt, "warm probes missed opt");
        assert_eq!(cost_scaling_cold_in(g, &mut ws).unwrap().makespan, opt, "cold missed opt");
    }
}

criterion_group!(benches, bench_repeat_solve);
criterion_main!(benches);
