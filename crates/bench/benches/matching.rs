//! Maximum-matching engine shoot-out on the two bipartite generator
//! families — the substrate the paper takes from MatchMaker (§IV-A uses
//! push-relabel; we compare all engines).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semimatch_gen::rng::Xoshiro256;
use semimatch_gen::{fewg_manyg, hilo_permuted};
use semimatch_matching::{maximum_matching, maximum_matching_with_init, Algorithm, Init};

fn bench_matching(c: &mut Criterion) {
    let mut rng = Xoshiro256::seed_from_u64(42);
    let instances = vec![
        ("hilo-4096", hilo_permuted(4096, 1024, 32, 10, &mut rng)),
        ("fewgmanyg-4096", fewg_manyg(4096, 1024, 32, 10, &mut rng)),
    ];
    let mut group = c.benchmark_group("matching");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    for (name, g) in &instances {
        for algo in Algorithm::ALL {
            group.bench_with_input(BenchmarkId::new(algo.name(), name), g, |b, g| {
                b.iter(|| maximum_matching(g, algo).cardinality())
            });
        }
        // Lookahead ablation: the MatchMaker study's headline optimization.
        group.bench_with_input(BenchmarkId::new("dfs-plain", name), g, |b, g| {
            b.iter(|| semimatch_matching::dfs::dfs_plain(g).cardinality())
        });
        // Initialization ablation (the paper's reference [16]): how much
        // does the jump-start matter for the strongest engine?
        for init in Init::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("hk-init-{}", init.name()), name),
                g,
                |b, g| {
                    b.iter(|| {
                        maximum_matching_with_init(g, Algorithm::HopcroftKarp, init).cardinality()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
