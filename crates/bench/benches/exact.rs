//! §IV-A ablation: incremental vs bisection deadline search, and the
//! capacitated-flow oracle vs literal `G_D` replication with each matching
//! engine.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semimatch_core::exact::{exact_unit, exact_unit_replicated, SearchStrategy};
use semimatch_gen::rng::Xoshiro256;
use semimatch_gen::{fewg_manyg, hilo_permuted};
use semimatch_matching::Algorithm;

fn bench_exact(c: &mut Criterion) {
    let mut rng = Xoshiro256::seed_from_u64(42);
    // n/p = 20 keeps the optimum well above the trivial bound, which is
    // where the search strategies separate.
    let instances = vec![
        ("hilo-5120x256", hilo_permuted(5120, 256, 32, 10, &mut rng)),
        ("fewgmanyg-5120x256", fewg_manyg(5120, 256, 32, 10, &mut rng)),
    ];
    let mut group = c.benchmark_group("exact");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for (name, g) in &instances {
        for (label, strategy) in
            [("incremental", SearchStrategy::Incremental), ("bisection", SearchStrategy::Bisection)]
        {
            group.bench_with_input(BenchmarkId::new(label, name), g, |b, g| {
                b.iter(|| exact_unit(g, strategy).unwrap().makespan)
            });
        }
        group.bench_with_input(BenchmarkId::new("replicated-push-relabel", name), g, |b, g| {
            b.iter(|| {
                exact_unit_replicated(g, Algorithm::PushRelabel, SearchStrategy::Bisection)
                    .unwrap()
                    .makespan
            })
        });
        group.bench_with_input(BenchmarkId::new("replicated-hopcroft-karp", name), g, |b, g| {
            b.iter(|| {
                exact_unit_replicated(g, Algorithm::HopcroftKarp, SearchStrategy::Bisection)
                    .unwrap()
                    .makespan
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);
