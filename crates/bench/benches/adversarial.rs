//! Fig. 3 family at growing `k`: heuristic and exact running times on the
//! adversarial instances (they are sparse, so everything should stay
//! near-linear even as the quality of basic/sorted degrades to `k`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semimatch_core::exact::{exact_unit, harvey_exact, SearchStrategy};
use semimatch_core::BiHeuristic;
use semimatch_gen::adversarial::fig3;

fn bench_adversarial(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversarial-fig3");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for k in [10u32, 13, 16] {
        let g = fig3(k);
        for h in BiHeuristic::ALL {
            group.bench_with_input(BenchmarkId::new(h.label(), k), &g, |b, g| {
                b.iter(|| h.run(g).unwrap().makespan(g))
            });
        }
        group.bench_with_input(BenchmarkId::new("exact-bisection", k), &g, |b, g| {
            b.iter(|| exact_unit(g, SearchStrategy::Bisection).unwrap().makespan)
        });
        if k <= 13 {
            group.bench_with_input(BenchmarkId::new("harvey", k), &g, |b, g| {
                b.iter(|| harvey_exact(g).unwrap().makespan(g))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_adversarial);
criterion_main!(benches);
