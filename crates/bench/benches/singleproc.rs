//! §V-B timing reproduction: the four `SINGLEPROC-UNIT` greedy heuristics
//! vs the exact algorithm on both generator families (paper sizes
//! n = 5120, p = 1024, d = 10).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semimatch_core::exact::{exact_unit, SearchStrategy};
use semimatch_core::BiHeuristic;
use semimatch_gen::rng::Xoshiro256;
use semimatch_gen::{fewg_manyg, hilo_permuted};

fn bench_singleproc(c: &mut Criterion) {
    let mut rng = Xoshiro256::seed_from_u64(42);
    let instances = vec![
        ("hilo-20-4", hilo_permuted(5120, 1024, 32, 10, &mut rng)),
        ("fewgmanyg-20-4", fewg_manyg(5120, 1024, 32, 10, &mut rng)),
    ];
    let mut group = c.benchmark_group("singleproc");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    for (name, g) in &instances {
        for h in BiHeuristic::ALL {
            group.bench_with_input(BenchmarkId::new(h.label(), name), g, |b, g| {
                b.iter(|| h.run(g).unwrap().makespan(g))
            });
        }
        group.bench_with_input(BenchmarkId::new("exact-bisection", name), g, |b, g| {
            b.iter(|| exact_unit(g, SearchStrategy::Bisection).unwrap().makespan)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_singleproc);
criterion_main!(benches);
