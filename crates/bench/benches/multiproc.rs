//! Tables II/III timing reproduction: SGH, VGH, EGH, EVG on the paper's
//! own instance sizes (`FG-5-1-MP`, `MG-5-1-MP`, `HLF-5-1-MP`,
//! `HLM-5-1-MP`; unit and related weights). The paper's Matlab numbers put
//! VGH/EVG roughly an order of magnitude above SGH/EGH — the *relative*
//! ordering is the reproduction target.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semimatch_core::hyper::HyperHeuristic;
use semimatch_gen::params::{Config, Family};
use semimatch_gen::weights::WeightScheme;

fn bench_multiproc(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiproc");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for weights in [WeightScheme::Unit, WeightScheme::Related] {
        for family in [Family::Fg, Family::Mg, Family::Hlf, Family::Hlm] {
            let cfg = Config { family, n: 1280, p: 256, dv: 5, dh: 10, weights };
            let h = cfg.instance(42, 0);
            for heuristic in HyperHeuristic::ALL {
                group.bench_with_input(
                    BenchmarkId::new(heuristic.label(), cfg.name()),
                    &h,
                    |b, h| b.iter(|| heuristic.run(h).unwrap().makespan(h)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_multiproc);
criterion_main!(benches);
