//! Generator throughput: HiLo, FewgManyg, and the two-step hypergraph
//! generator at paper scale.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semimatch_gen::hyper::{hyper_instance, HyperKind, HyperParams};
use semimatch_gen::rng::Xoshiro256;
use semimatch_gen::{fewg_manyg, hilo_permuted};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    group.bench_function(BenchmarkId::new("hilo", "5120x1024"), |b| {
        let mut rng = Xoshiro256::seed_from_u64(1);
        b.iter(|| hilo_permuted(5120, 1024, 32, 10, &mut rng).num_edges())
    });
    group.bench_function(BenchmarkId::new("fewg_manyg", "5120x1024"), |b| {
        let mut rng = Xoshiro256::seed_from_u64(2);
        b.iter(|| fewg_manyg(5120, 1024, 32, 10, &mut rng).num_edges())
    });
    for kind in [HyperKind::FewgManyg, HyperKind::HiLo] {
        let params = HyperParams { kind, n: 5120, p: 1024, g: 32, dv: 5, dh: 10 };
        group.bench_function(BenchmarkId::new("hyper", format!("{kind:?}-5120x1024")), |b| {
            let mut rng = Xoshiro256::seed_from_u64(3);
            b.iter(|| hyper_instance(params, &mut rng).total_pins())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
