//! Regenerates **Table II**: quality (makespan / LB) and running time of
//! SGH, VGH, EGH, EVG on the **unweighted** random hypergraphs.

use semimatch_bench::{run_quality_table, Options};
use semimatch_gen::params::table1_grid;
use semimatch_gen::weights::WeightScheme;

fn main() {
    let opts = Options::from_args();
    run_quality_table(
        "Table II — unweighted (MULTIPROC-UNIT)",
        "table2.md",
        &table1_grid(WeightScheme::Unit),
        &opts,
    );
}
