//! Serving-daemon scale: aggregate event throughput of the multi-tenant
//! daemon across tenant counts × shard counts × repair policies.
//!
//! Every cell generates a Zipf-multiplexed workload (`generate_multiplexed`,
//! hotness 1 — tenant 0 dominates), routes it through a fresh
//! [`Daemon`] in batches, and reports best-of-`REPEATS` aggregate
//! events/s. Two contracts are asserted while timing:
//!
//! * **determinism** — per-tenant final scores are identical at every
//!   shard count of the same (tenants, policy) cell (sharding is purely a
//!   throughput knob);
//! * **no silent shedding** — the batch size stays below the queue bound,
//!   so a nonzero shed counter fails the run instead of quietly deflating
//!   the numbers.
//!
//! The report lands as markdown and as `results/BENCH_serve_scale.json`
//! with the `threads`/`host_cores`/git stamp of the other bench bins; the
//! `guard_host_cores` check refuses to overwrite results from a different
//! machine without `--force`. On a 1-core host the multi-shard rows are
//! oversubscribed — read them next to `host_cores`.

use std::sync::Arc;
use std::time::Instant;

use semimatch_bench::{
    emit_report, guard_host_cores, indent_json, markdown_table, record_pool_stats, Options,
    RunStamp,
};
use semimatch_daemon::{Daemon, DaemonConfig};
use semimatch_gen::rng::Xoshiro256;
use semimatch_gen::trace::{generate_multiplexed, MultiplexParams, MultiplexedTrace, TraceParams};
use semimatch_serve::{EngineConfig, RepairPolicy};

/// Timing repeats per cell; the best run is reported.
const REPEATS: usize = 3;

/// Events accepted between pumps (below `queue_capacity`, so nothing is
/// shed at this load).
const BATCH: usize = 512;

/// Tenant counts swept (the {1, 8, 64} grid of the acceptance bar).
const TENANT_COUNTS: [u32; 3] = [1, 8, 64];

/// The policies compared: always-repair, drift-bounded, periodic
/// from-scratch resolves, and placement-only (`Lazy` with unbounded
/// slack — no repair ever fires). The last row isolates the router +
/// greedy-placement pipe itself; it is the aggregate-throughput ceiling
/// the repairing policies trade quality work against.
fn policies() -> [RepairPolicy; 4] {
    [
        RepairPolicy::Eager,
        RepairPolicy::Lazy { slack: 8 },
        RepairPolicy::Periodic { every: 64 },
        RepairPolicy::Lazy { slack: u64::MAX },
    ]
}

/// Shard counts swept: single-shard and one shard per host core (with a
/// floor of 2 so the cross-shard determinism assert always has a
/// multi-shard row, even on a 1-core host).
fn shard_counts(host_cores: usize) -> Vec<u32> {
    let wide = (host_cores as u32).max(2);
    if wide == 1 {
        vec![1]
    } else {
        vec![1, wide]
    }
}

/// The multiplexed workload of one tenant count: Zipf hotness 1, weighted
/// hypergraph configurations, moderate churn, no processor churn (the
/// per-tenant pools stay at 16).
fn workload(tenants: u32, scale: u32, seed: u64) -> MultiplexedTrace {
    let params = MultiplexParams {
        tenants,
        hotness: 1,
        per_tenant: TraceParams {
            n_procs: 16,
            arrivals: (8192 / scale).max(128),
            churn_pct: 20,
            max_configs: 3,
            max_pins: 2,
            max_weight: 8,
            proc_events: 0,
            burst_every: 0,
            burst_len: 0,
        },
    };
    generate_multiplexed(&params, &mut Xoshiro256::seed_from_u64(seed))
}

struct Cell {
    tenants: u32,
    shards: u32,
    policy: RepairPolicy,
    events: u64,
    seconds: f64,
}

impl Cell {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.seconds.max(f64::EPSILON)
    }
}

fn main() {
    let opts = Options::from_args();
    let scale = opts.scale.max(1);
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    guard_host_cores("BENCH_serve_scale.json", host_cores, opts.force);
    let shard_grid = shard_counts(host_cores);
    let stamp = RunStamp::capture(opts.threads);
    let collecting = Arc::new(semimatch_obs::Collecting::new());
    semimatch_obs::install(collecting.clone());
    let pool =
        rayon::ThreadPoolBuilder::new().num_threads(opts.threads).build().expect("local pool");

    let mut cells: Vec<Cell> = Vec::new();
    for &tenants in &TENANT_COUNTS {
        let trace = workload(tenants, scale, opts.seed);
        for policy in policies() {
            // Per-tenant final scores of the 1-shard run; every other
            // shard count must reproduce them exactly.
            let mut pinned: Option<Vec<(u32, u128)>> = None;
            for &shards in &shard_grid {
                let cfg = DaemonConfig {
                    shards,
                    engine: EngineConfig { policy, ..EngineConfig::default() },
                    queue_capacity: BATCH * 4,
                    migration_budget: u64::MAX,
                    max_tenants: tenants as usize,
                    slo_gap: u128::MAX,
                };
                let mut best = f64::INFINITY;
                let mut events = 0u64;
                for _ in 0..REPEATS {
                    let mut daemon = Daemon::new(cfg).expect("validated config");
                    let start = Instant::now();
                    pool.install(|| daemon.run(&trace, BATCH).expect("applicable trace"));
                    best = best.min(start.elapsed().as_secs_f64());
                    let c = daemon.counters();
                    assert_eq!(c.shed(), 0, "this load must not shed");
                    events = c.applied;
                    let scores: Vec<(u32, u128)> =
                        daemon.statuses().iter().map(|s| (s.tenant, s.score.0)).collect();
                    match &pinned {
                        None => pinned = Some(scores),
                        Some(expect) => assert_eq!(
                            &scores, expect,
                            "{tenants} tenants / {policy}: scores changed at {shards} shards"
                        ),
                    }
                }
                cells.push(Cell { tenants, shards, policy, events, seconds: best });
            }
        }
    }

    record_pool_stats(&pool.stats());
    semimatch_obs::uninstall();
    let metrics = collecting.registry().render_json();

    let peak = cells.iter().map(Cell::events_per_sec).fold(0.0f64, f64::max);
    let headers = ["Tenants", "Shards", "Policy", "Events", "Seconds", "Events/s"];
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.tenants.to_string(),
                c.shards.to_string(),
                c.policy.to_string(),
                c.events.to_string(),
                format!("{:.4}", c.seconds),
                format!("{:.0}", c.events_per_sec()),
            ]
        })
        .collect();
    let report = format!(
        "# Serving-daemon scale\n\nscale = {}, seed = {}, host cores = {}, repeats = {}, \
         batch = {}\n\n{}\npeak aggregate throughput: {:.0} events/s\n\n\
         Per-tenant final scores identical at every shard count of each \
         (tenants, policy) cell; zero events shed.\n",
        scale,
        opts.seed,
        host_cores,
        REPEATS,
        BATCH,
        markdown_table(&headers, &rows),
        peak
    );
    emit_report("serve_scale.md", &report);

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"meta\": {{\"scale\": {}, \"seed\": {}, {}, \"repeats\": {}, \"batch\": {}, \
         \"tenant_counts\": [1, 8, 64], \"shard_counts\": {:?}, \
         \"peak_events_per_sec\": {:.0}}},\n  \"rows\": [\n",
        scale,
        opts.seed,
        stamp.json_fields(),
        REPEATS,
        BATCH,
        shard_grid,
        peak
    ));
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tenants\": {}, \"shards\": {}, \"policy\": \"{}\", \"events\": {}, \
             \"seconds\": {:.6}, \"events_per_sec\": {:.0}}}{}\n",
            c.tenants,
            c.shards,
            c.policy,
            c.events,
            c.seconds,
            c.events_per_sec(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"metrics\": {}\n", indent_json(&metrics, "  ")));
    json.push_str("}\n");
    emit_report("BENCH_serve_scale.json", &json);
}
