//! Quality ablation for the §IV-D3 ambiguity and the SGH criterion:
//! compares, on the Table III (related-weights) grid,
//!
//! * VGH with the *resulting-vector* reading (our default),
//! * VGH with the *current-loads / pinwise* reading (weight-blind),
//! * SGH (paper criterion) and SGH on resulting loads,
//! * SGH + local-search refinement (the extension).
//!
//! The pinwise reading tracks SGH on weighted instances — which is exactly
//! what the paper's Table III reports for its VGH — while the
//! resulting-vector reading is weight-aware and beats it.

use rayon::prelude::*;
use semimatch_bench::{emit_report, markdown_table, row_name, scale_config, Options};
use semimatch_core::hyper::sgh::{
    basic_greedy_hyp, sorted_greedy_hyp, sorted_greedy_hyp_resulting,
};
use semimatch_core::hyper::vgh::{vector_greedy_hyp, vector_greedy_hyp_pinwise};
use semimatch_core::lower_bound::lower_bound_multiproc;
use semimatch_core::quality::{median_f64, ratio};
use semimatch_core::refine::refine;
use semimatch_gen::params::table1_grid;
use semimatch_gen::weights::WeightScheme;
use semimatch_graph::Hypergraph;

type Variant = (&'static str, fn(&Hypergraph) -> u64);

fn sgh_refined(h: &Hypergraph) -> u64 {
    let mut hm = sorted_greedy_hyp(h).unwrap();
    refine(h, &mut hm, 16).unwrap();
    hm.makespan(h)
}

fn main() {
    let opts = Options::from_args();
    let variants: Vec<Variant> = vec![
        ("BGH", |h| basic_greedy_hyp(h).unwrap().makespan(h)),
        ("SGH", |h| sorted_greedy_hyp(h).unwrap().makespan(h)),
        ("SGH-resulting", |h| sorted_greedy_hyp_resulting(h).unwrap().makespan(h)),
        ("VGH-resulting", |h| vector_greedy_hyp(h).unwrap().makespan(h)),
        ("VGH-pinwise", |h| vector_greedy_hyp_pinwise(h).unwrap().makespan(h)),
        ("SGH+refine", sgh_refined),
    ];
    let grid = table1_grid(WeightScheme::Related);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut sums = vec![0.0f64; variants.len()];
    for cfg in &grid {
        let scaled = scale_config(*cfg, opts.scale);
        let per_instance: Vec<Vec<f64>> = (0..opts.instances)
            .into_par_iter()
            .map(|i| {
                let h = scaled.instance(opts.seed, i);
                let lb = lower_bound_multiproc(&h).unwrap();
                variants.iter().map(|(_, f)| ratio(f(&h), lb)).collect()
            })
            .collect();
        let medians: Vec<f64> = (0..variants.len())
            .map(|j| {
                let mut xs: Vec<f64> = per_instance.iter().map(|r| r[j]).collect();
                median_f64(&mut xs)
            })
            .collect();
        for (j, &m) in medians.iter().enumerate() {
            sums[j] += m;
        }
        let mut row = vec![row_name(&scaled, opts.scale)];
        row.extend(medians.iter().map(|x| format!("{x:.3}")));
        rows.push(row);
    }
    let mut avg = vec!["Average".to_string()];
    avg.extend(sums.iter().map(|s| format!("{:.3}", s / grid.len() as f64)));
    rows.push(avg);

    let mut headers: Vec<&str> = vec!["Instance"];
    headers.extend(variants.iter().map(|(n, _)| *n));
    let mut report = format!(
        "# Ablation — SGH/VGH design choices on related weights\n\nscale = {}, instances = {}, seed = {}\n\n",
        opts.scale, opts.instances, opts.seed
    );
    report.push_str(&markdown_table(&headers, &rows));
    report.push_str(
        "\nReading guide: `VGH-pinwise` ranks configurations by the current loads\n\
         of their processors (weight-blind, the paper's empirical VGH behaviour);\n\
         `VGH-resulting` includes the candidate's own weight. `SGH+refine` is the\n\
         local-search extension beyond the paper.\n",
    );
    emit_report("ablation_quality.md", &report);
}
