//! Demonstrates the paper's figures: the worst-case constructions of
//! Figs. 1 and 3 and the technical report's Figs. 4–5, plus the Fig. 2
//! hypergraph, by running every heuristic on each and printing the
//! achieved vs optimal makespans.

use semimatch_bench::{emit_report, markdown_table, solver_set};
use semimatch_core::solver::{KindSolver, Problem, Solver, SolverKind};
use semimatch_gen::adversarial::{fig1, fig2, fig3, fig4, fig5};
use semimatch_graph::Bipartite;

fn row(
    name: &str,
    g: &Bipartite,
    exact: &mut KindSolver,
    heuristics: &mut [KindSolver],
) -> Vec<String> {
    let problem = Problem::SingleProc(g);
    let opt = exact.solve(problem).unwrap().makespan(&problem).unwrap();
    let mut row = vec![name.to_string(), opt.to_string()];
    for solver in heuristics.iter_mut() {
        let sol = solver.solve(problem).unwrap();
        row.push(sol.makespan(&problem).unwrap().to_string());
    }
    row
}

fn main() {
    // One workspace-backed solver per kind, reused across every figure.
    let mut exact = SolverKind::ExactBisection.solver();
    let mut heuristics = solver_set(&SolverKind::BI_HEURISTICS);
    let mut rows = Vec::new();
    rows.push(row("Fig. 1 (2 tasks / 2 procs)", &fig1(), &mut exact, &mut heuristics));
    for k in [3u32, 5, 8, 10] {
        rows.push(row(&format!("Fig. 3, k = {k}"), &fig3(k), &mut exact, &mut heuristics));
    }
    rows.push(row("TR Fig. 4 (double-sorted trap)", &fig4(), &mut exact, &mut heuristics));
    rows.push(row("TR Fig. 5 (expected-greedy trap)", &fig5(), &mut exact, &mut heuristics));

    let mut report =
        String::from("# Figures 1/3/4/5 — worst-case behaviour of the greedy heuristics\n\n");
    let mut headers = vec!["Instance", "OPT"];
    headers.extend(SolverKind::BI_HEURISTICS.iter().map(|k| k.label()));
    report.push_str(&markdown_table(&headers, &rows));
    report.push_str(
        "\nPaper claims: basic/sorted reach k on Fig. 3 (OPT 1); double-sorted \
         also fails on TR Fig. 4 while expected-greedy stays optimal; \
         TR Fig. 5 defeats expected-greedy as well.\n",
    );

    // Fig. 2: the sample MULTIPROC hypergraph, solved by all heuristics.
    let h = fig2();
    let problem = Problem::MultiProc(&h);
    report.push_str("\n## Fig. 2 — sample MULTIPROC hypergraph\n\n");
    let mut hrows = Vec::new();
    for kind in SolverKind::HYPER_HEURISTICS {
        let sol = kind.solve(problem).unwrap();
        hrows.push(vec![kind.label().to_string(), sol.makespan(&problem).unwrap().to_string()]);
    }
    let opt = SolverKind::BruteForce.solve(problem).unwrap().makespan(&problem).unwrap();
    hrows.push(vec!["brute-force OPT".into(), opt.to_string()]);
    report.push_str(&markdown_table(&["Algorithm", "Makespan"], &hrows));

    emit_report("figures.md", &report);
}
