//! Demonstrates the paper's figures: the worst-case constructions of
//! Figs. 1 and 3 and the technical report's Figs. 4–5, plus the Fig. 2
//! hypergraph, by running every heuristic on each and printing the
//! achieved vs optimal makespans.

use semimatch_bench::{emit_report, markdown_table};
use semimatch_core::exact::{exact_unit, SearchStrategy};
use semimatch_core::BiHeuristic;
use semimatch_gen::adversarial::{fig1, fig2, fig3, fig4, fig5};
use semimatch_graph::Bipartite;

fn row(name: &str, g: &Bipartite) -> Vec<String> {
    let opt = exact_unit(g, SearchStrategy::Bisection).unwrap().makespan;
    let mut row = vec![name.to_string(), opt.to_string()];
    for h in BiHeuristic::ALL {
        let sm = h.run(g).unwrap();
        row.push(sm.makespan(g).to_string());
    }
    row
}

fn main() {
    let mut rows = Vec::new();
    rows.push(row("Fig. 1 (2 tasks / 2 procs)", &fig1()));
    for k in [3u32, 5, 8, 10] {
        rows.push(row(&format!("Fig. 3, k = {k}"), &fig3(k)));
    }
    rows.push(row("TR Fig. 4 (double-sorted trap)", &fig4()));
    rows.push(row("TR Fig. 5 (expected-greedy trap)", &fig5()));

    let mut report = String::from(
        "# Figures 1/3/4/5 — worst-case behaviour of the greedy heuristics\n\n",
    );
    report.push_str(&markdown_table(
        &["Instance", "OPT", "basic", "sorted", "double-sorted", "expected"],
        &rows,
    ));
    report.push_str(
        "\nPaper claims: basic/sorted reach k on Fig. 3 (OPT 1); double-sorted \
         also fails on TR Fig. 4 while expected-greedy stays optimal; \
         TR Fig. 5 defeats expected-greedy as well.\n",
    );

    // Fig. 2: the sample MULTIPROC hypergraph, solved by all heuristics.
    let h = fig2();
    report.push_str("\n## Fig. 2 — sample MULTIPROC hypergraph\n\n");
    let mut hrows = Vec::new();
    for heur in semimatch_core::hyper::HyperHeuristic::ALL {
        let hm = heur.run(&h).unwrap();
        hrows.push(vec![heur.label().to_string(), hm.makespan(&h).to_string()]);
    }
    let (opt, _) = semimatch_core::exact::brute_force_multiproc(&h, 1_000_000).unwrap();
    hrows.push(vec!["brute-force OPT".into(), opt.to_string()]);
    report.push_str(&markdown_table(&["Algorithm", "Makespan"], &hrows));

    emit_report("figures.md", &report);
}
