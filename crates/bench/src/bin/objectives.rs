//! Objective sweep: every reported cost model × a representative solver
//! set, on the small end of the Table I grid.
//!
//! For each (instance, kind, objective) cell the solver runs *optimizing
//! that objective* and the cell records the median achieved
//! `score / objective-lower-bound` ratio plus mean wall-clock seconds.
//! The report is emitted as markdown (like every other bench bin) **and**
//! as machine-readable `results/BENCH_objectives.json`, so the
//! quality/perf trajectory across the objective axis is recorded PR over
//! PR.

use std::sync::Arc;
use std::time::Instant;

use semimatch_bench::{
    emit_report, guard_host_cores, indent_json, markdown_table, row_name, scale_config, Options,
    RunStamp,
};
use semimatch_core::objective::Objective;
use semimatch_core::quality::{mean_f64, median_f64, score_ratio};
use semimatch_core::solver::{Problem, Solver, SolverKind};
use semimatch_gen::params::{Config, Family};
use semimatch_gen::weights::WeightScheme;

/// Solver set for the sweep: the two strongest greedy lineages, their
/// refined forms, and the streaming pass.
const KINDS: [SolverKind; 5] = [
    SolverKind::Sgh,
    SolverKind::Evg,
    SolverKind::SghRefined,
    SolverKind::EvgRefined,
    SolverKind::StreamingGreedy,
];

fn grid() -> Vec<Config> {
    vec![
        Config { family: Family::Fg, n: 1280, p: 256, dv: 5, dh: 10, weights: WeightScheme::Unit },
        Config {
            family: Family::Fg,
            n: 1280,
            p: 256,
            dv: 5,
            dh: 10,
            weights: WeightScheme::Related,
        },
        Config {
            family: Family::Mg,
            n: 1280,
            p: 256,
            dv: 5,
            dh: 10,
            weights: WeightScheme::Related,
        },
    ]
}

struct Cell {
    instance: String,
    kind: SolverKind,
    objective: Objective,
    ratio: f64,
    seconds: f64,
}

fn main() {
    let opts = Options::from_args();
    let stamp = RunStamp::capture(rayon::current_num_threads());
    guard_host_cores("BENCH_objectives.json", stamp.host_cores, opts.force);
    let collecting = Arc::new(semimatch_obs::Collecting::new());
    semimatch_obs::install(collecting.clone());
    let mut cells: Vec<Cell> = Vec::new();
    for cfg in grid() {
        let cfg = scale_config(cfg, opts.scale);
        let name = row_name(&cfg, opts.scale);
        for kind in KINDS {
            let mut solver = kind.solver();
            for objective in Objective::REPORTED {
                let mut ratios = Vec::new();
                let mut secs = Vec::new();
                for i in 0..opts.instances {
                    let h = cfg.instance(opts.seed, i);
                    let problem = Problem::MultiProc(&h);
                    let lb = problem.lower_bound(objective).expect("covered");
                    let start = Instant::now();
                    let sol = solver.solve_with(problem, objective).expect("covered");
                    secs.push(start.elapsed().as_secs_f64());
                    ratios.push(score_ratio(
                        sol.score(&problem, objective).expect("class matches"),
                        lb,
                    ));
                }
                cells.push(Cell {
                    instance: name.clone(),
                    kind,
                    objective,
                    ratio: median_f64(&mut ratios),
                    seconds: mean_f64(&secs),
                });
            }
        }
    }

    semimatch_obs::uninstall();
    let metrics = collecting.registry().render_json();

    // Markdown: one section per objective, kinds as columns.
    let mut report = format!(
        "# Objective sweep\n\nscale = {}, instances = {}, seed = {}\n\n",
        opts.scale, opts.instances, opts.seed
    );
    for objective in Objective::REPORTED {
        let mut headers = vec!["Instance".to_string()];
        headers.extend(KINDS.iter().map(|k| k.label().to_string()));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut rows = Vec::new();
        for cfg in grid() {
            let cfg = scale_config(cfg, opts.scale);
            let name = row_name(&cfg, opts.scale);
            let mut row = vec![name.clone()];
            for kind in KINDS {
                let cell = cells
                    .iter()
                    .find(|c| c.instance == name && c.kind == kind && c.objective == objective)
                    .expect("cell computed above");
                row.push(format!("{:.2}", cell.ratio));
            }
            rows.push(row);
        }
        report.push_str(&format!("## {objective} (score / LB)\n\n"));
        report.push_str(&markdown_table(&header_refs, &rows));
        report.push('\n');
    }
    emit_report("objectives.md", &report);

    // Machine-readable trajectory record.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"meta\": {{\"scale\": {}, \"instances\": {}, \"seed\": {}, {}}},\n  \"rows\": [\n",
        opts.scale,
        opts.instances,
        opts.seed,
        stamp.json_fields()
    ));
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"instance\": \"{}\", \"kind\": \"{}\", \"objective\": \"{}\", \
             \"ratio\": {:.6}, \"seconds\": {:.6}}}{}\n",
            c.instance,
            c.kind.name(),
            c.objective,
            c.ratio,
            c.seconds,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"metrics\": {}\n", indent_json(&metrics, "  ")));
    json.push_str("}\n");
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("BENCH_objectives.json");
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}
