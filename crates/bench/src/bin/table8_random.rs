//! Regenerates the technical report's **Table 8** analogue: quality and
//! running time under **uniform random** weights (the paper's cross-check
//! data set; EVG is reported to win clearly here).

use semimatch_bench::{run_quality_table, Options};
use semimatch_gen::params::table1_grid;
use semimatch_gen::weights::WeightScheme;

fn main() {
    let opts = Options::from_args();
    run_quality_table(
        "TR Table 8 — random weights (MULTIPROC)",
        "table8_random.md",
        &table1_grid(WeightScheme::Random),
        &opts,
    );
}
