//! Extension report: **weighted `SINGLEPROC`** (NP-complete; the paper
//! evaluates weights only in its `MULTIPROC` experiments).
//!
//! Random edge weights in [1, 20] on the §V-A bipartite families; compares
//! the paper's four greedy heuristics (which generalize naturally to
//! weights) against the classical Graham LPT baseline, all measured
//! against the Eq. 1 lower bound.

use rayon::prelude::*;
use semimatch_bench::singleproc::{bi_grid, BiConfig};
use semimatch_bench::solver_set;
use semimatch_bench::{emit_report, markdown_table, Options};
use semimatch_core::greedy::lpt::lpt_greedy;
use semimatch_core::lower_bound::lower_bound_singleproc;
use semimatch_core::quality::{median_f64, ratio};
use semimatch_core::solver::{Problem, Solver, SolverKind};
use semimatch_gen::rng::Xoshiro256;
use semimatch_gen::weights::apply_random_edge_weights;

const MAX_WEIGHT: u64 = 20;

fn main() {
    let opts = Options::from_args();
    let mut report = format!(
        "# Extension — weighted SINGLEPROC (random edge weights in [1, {MAX_WEIGHT}])\n\n\
         scale = {}, instances = {}, seed = {}\n\n\
         Ratios are makespan / LB (Eq. 1); the optimum is NP-hard here, so the\n\
         lower bound plays the role it plays in Tables II/III.\n\n",
        opts.scale, opts.instances, opts.seed
    );
    let grid = bi_grid(10, 32);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut sums = vec![0.0f64; SolverKind::BI_HEURISTICS.len() + 1];
    for cfg in &grid {
        let scaled = scale_bi(*cfg, opts.scale);
        let per_instance: Vec<Vec<f64>> = (0..opts.instances)
            .into_par_iter()
            .map_init(
                || solver_set(&SolverKind::BI_HEURISTICS),
                |solvers, i| {
                    let mut g = scaled.instance(opts.seed, i);
                    // Derive the weight stream from the same seeds, offset so
                    // it never reuses generator randomness.
                    let mut wrng = Xoshiro256::seed_from_u64(opts.seed ^ 0xD1F3).stream(i);
                    apply_random_edge_weights(&mut g, MAX_WEIGHT, &mut wrng);
                    let lb = lower_bound_singleproc(&g).expect("covered");
                    let problem = Problem::SingleProc(&g);
                    let mut out: Vec<f64> = solvers
                        .iter_mut()
                        .map(|s| {
                            ratio(
                                s.solve(problem)
                                    .expect("covered")
                                    .makespan(&problem)
                                    .expect("class"),
                                lb,
                            )
                        })
                        .collect();
                    out.push(ratio(lpt_greedy(&g).expect("covered").makespan(&g), lb));
                    out
                },
            )
            .collect();
        let medians: Vec<f64> = (0..sums.len())
            .map(|j| {
                let mut xs: Vec<f64> = per_instance.iter().map(|r| r[j]).collect();
                median_f64(&mut xs)
            })
            .collect();
        for (j, &m) in medians.iter().enumerate() {
            sums[j] += m;
        }
        let name = if opts.scale == 1 {
            format!("{}-W", scaled.name())
        } else {
            format!("{}-n{}-p{}-W", scaled.family.prefix(), scaled.n, scaled.p)
        };
        let mut row = vec![name];
        row.extend(medians.iter().map(|x| format!("{x:.3}")));
        rows.push(row);
    }
    let mut avg = vec!["Average".to_string()];
    avg.extend(sums.iter().map(|s| format!("{:.3}", s / grid.len() as f64)));
    rows.push(avg);
    let mut headers = vec!["Instance"];
    headers.extend(SolverKind::BI_HEURISTICS.iter().map(|k| k.label()));
    headers.push("LPT");
    report.push_str(&markdown_table(&headers, &rows));
    report.push_str(
        "\nExpected shape: `expected` (load forecasting) and `LPT`\n\
         (weight-aware placement) lead; `basic` trails. The Average line is the\n\
         mean of the per-row medians.\n",
    );
    emit_report("weighted_singleproc.md", &report);
}

fn scale_bi(mut c: BiConfig, scale: u32) -> BiConfig {
    if scale > 1 {
        c.n = (c.n / scale).max(c.g);
        c.p = ((c.p / scale).max(c.g) / c.g).max(1) * c.g;
    }
    c
}
