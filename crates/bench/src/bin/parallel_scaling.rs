//! Parallel scaling: the two workloads the work-stealing pool was built
//! to accelerate, replayed under local pools of 1, 2, 4, … workers.
//!
//! * **fast-exact-tall** — the tall (n ≫ p) unit sweep from the
//!   `repeat_solve` bench, solved by the two exact backends with in-solver
//!   parallel paths: `hk-semi` (work-stealing phase extraction) and
//!   `cost-scaling` (multi-way capacity probes).
//! * **streaming** — a sharded `Engine::replay` of a generated
//!   hypergraph trace, where the repair pass sweeps shards concurrently.
//!
//! Every (workload, pool size) cell reports best-of-`REPEATS` wall-clock
//! seconds and the speedup over the 1-worker run of the same workload;
//! the run asserts the result checksum is identical at every pool size
//! (the determinism contract). The report lands as markdown **and** as
//! `results/BENCH_parallel.json` with the host core count — on a 1-core
//! host the pools are oversubscribed and the speedup column honestly
//! records ≈1× (the numbers are only meaningful read next to
//! `host_cores`).

use std::sync::Arc;
use std::time::Instant;

use semimatch_bench::{
    emit_report, guard_host_cores, indent_json, markdown_table, record_pool_stats, Options,
    RunStamp,
};
use semimatch_core::objective::Objective;
use semimatch_core::solver::{solve_many, Problem, SolverKind};
use semimatch_gen::rng::Xoshiro256;
use semimatch_gen::trace::{generate_trace, Trace, TraceParams};
use semimatch_gen::{fewg_manyg, hilo_permuted};
use semimatch_graph::Bipartite;
use semimatch_serve::{Engine, EngineConfig};

/// Timing repeats per cell; the best run is reported.
const REPEATS: usize = 3;

/// Pool sizes to sweep: 1, 2, 4 and (when larger) every host core.
fn thread_counts() -> Vec<usize> {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut ts = vec![1usize, 2, 4];
    if host > 4 {
        ts.push(host);
    }
    ts
}

/// The tall unit sweep of the `fast-exact-tall` bench group.
fn tall_sweep(count: u64, n: u32, p: u32) -> Vec<Bipartite> {
    let root = Xoshiro256::seed_from_u64(42);
    (0..count)
        .map(|i| {
            let mut rng = root.stream(i);
            if i % 2 == 0 {
                hilo_permuted(n, p, 16, 6, &mut rng)
            } else {
                fewg_manyg(n, p, 16, 6, &mut rng)
            }
        })
        .collect()
}

/// The sharded serving trace of the `streaming` bench group.
fn streaming_trace(arrivals: u32, seed: u64) -> Trace {
    let params = TraceParams {
        n_procs: 64,
        arrivals,
        churn_pct: 10,
        max_configs: 4,
        max_pins: 3,
        max_weight: 16,
        proc_events: 0,
        burst_every: 0,
        burst_len: 0,
    };
    generate_trace(&params, &mut Xoshiro256::seed_from_u64(seed))
}

struct Cell {
    workload: String,
    threads: usize,
    seconds: f64,
}

/// Runs `work` under a `threads`-worker pool `REPEATS` times; returns
/// (best seconds, checksum).
fn time_under<F: FnMut() -> u64 + Send>(threads: usize, mut work: F) -> (f64, u64) {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("local pool");
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..REPEATS {
        let start = Instant::now();
        checksum = pool.install(&mut work);
        best = best.min(start.elapsed().as_secs_f64());
    }
    // Additive fold across every local pool of the sweep: the report's
    // `metrics` object then carries fleet totals (tasks, steals, sleeps).
    record_pool_stats(&pool.stats());
    (best, checksum)
}

fn main() {
    let opts = Options::from_args();
    let scale = opts.scale.max(1);
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    guard_host_cores("BENCH_parallel.json", host_cores, opts.force);
    let counts = thread_counts();
    let stamp = RunStamp::capture(*counts.last().expect("nonempty"));
    let collecting = Arc::new(semimatch_obs::Collecting::new());
    semimatch_obs::install(collecting.clone());

    // p = 32 keeps HiLo's p-divisible-by-g precondition (g = 16).
    let tall = tall_sweep(16, (8192 / scale).max(64), 32);
    let tall_problems: Vec<Problem<'_>> = tall.iter().map(Problem::SingleProc).collect();
    let trace = streaming_trace((8192 / scale).max(128), opts.seed);
    let serve_cfg = EngineConfig { shards: 8, ..EngineConfig::default() };

    let mut cells: Vec<Cell> = Vec::new();
    let mut checksums: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for &t in &counts {
        for kind in [SolverKind::HopcroftKarpSemi, SolverKind::CostScaling] {
            let (secs, sum) = time_under(t, || {
                solve_many(&tall_problems, &[kind], Objective::Makespan)
                    .iter()
                    .zip(&tall_problems)
                    .map(|(r, p)| r[0].as_ref().unwrap().makespan(p).unwrap())
                    .sum()
            });
            let workload = format!("fast-exact-tall/{}", kind.name());
            match checksums.get(&workload) {
                None => {
                    checksums.insert(workload.clone(), sum);
                }
                Some(&expect) => {
                    assert_eq!(sum, expect, "{workload}: result changed at {t} threads")
                }
            }
            cells.push(Cell { workload, threads: t, seconds: secs });
        }
        let (secs, sum) = time_under(t, || {
            Engine::replay(serve_cfg, &trace).expect("coverable trace").bottleneck()
        });
        let workload = "streaming/replay-sharded".to_string();
        match checksums.get(&workload) {
            None => {
                checksums.insert(workload.clone(), sum);
            }
            Some(&expect) => assert_eq!(sum, expect, "{workload}: result changed at {t} threads"),
        }
        cells.push(Cell { workload, threads: t, seconds: secs });
    }

    semimatch_obs::uninstall();
    let metrics = collecting.registry().render_json();

    let base = |w: &str| -> f64 {
        cells.iter().find(|c| c.workload == w && c.threads == 1).expect("1-thread cell").seconds
    };

    // Aggregate speedup at the widest pool: total 1-thread time over
    // total widest-pool time.
    let widest = *counts.last().expect("nonempty");
    let total_1: f64 = cells.iter().filter(|c| c.threads == 1).map(|c| c.seconds).sum();
    let total_w: f64 = cells.iter().filter(|c| c.threads == widest).map(|c| c.seconds).sum();
    let aggregate = total_1 / total_w.max(f64::EPSILON);

    // Markdown: workloads as rows, pool sizes as columns.
    let mut headers = vec!["Workload".to_string()];
    headers.extend(counts.iter().map(|t| format!("{t}T s (×)")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let workloads: Vec<String> = checksums.keys().cloned().collect();
    let rows: Vec<Vec<String>> = workloads
        .iter()
        .map(|w| {
            let mut row = vec![w.clone()];
            for &t in &counts {
                let c = cells
                    .iter()
                    .find(|c| &c.workload == w && c.threads == t)
                    .expect("cell computed above");
                row.push(format!(
                    "{:.3} ({:.2}×)",
                    c.seconds,
                    base(w) / c.seconds.max(f64::EPSILON)
                ));
            }
            row
        })
        .collect();
    let report = format!(
        "# Parallel scaling\n\nscale = {}, seed = {}, host cores = {}, repeats = {}\n\n{}\n\
         aggregate speedup at {} workers: {:.2}×\n\n\
         Checksums identical at every pool size (deterministic-equivalent \
         parallel paths).\n",
        scale,
        opts.seed,
        host_cores,
        REPEATS,
        markdown_table(&header_refs, &rows),
        widest,
        aggregate
    );
    emit_report("parallel_scaling.md", &report);

    // Machine-readable trajectory record.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"meta\": {{\"scale\": {}, \"seed\": {}, {}, \"repeats\": {}, \
         \"widest_pool\": {}, \"aggregate_speedup_at_widest\": {:.4}}},\n  \"rows\": [\n",
        scale,
        opts.seed,
        stamp.json_fields(),
        REPEATS,
        widest,
        aggregate
    ));
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, \
             \"speedup_vs_1t\": {:.4}}}{}\n",
            c.workload,
            c.threads,
            c.seconds,
            base(&c.workload) / c.seconds.max(f64::EPSILON),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    // Whole-sweep telemetry: solver counters across every pool size plus
    // the summed work-stealing stats of all local pools.
    json.push_str(&format!("  \"metrics\": {}\n", indent_json(&metrics, "  ")));
    json.push_str("}\n");
    emit_report("BENCH_parallel.json", &json);
}
