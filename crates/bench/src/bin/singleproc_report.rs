//! Regenerates the **§V-B / technical-report tables** for
//! `SINGLEPROC-UNIT`: exact optimum vs basic/sorted/double-sorted/expected
//! greedy, on HiLo and FewgManyg for d ∈ {2, 5, 10} and g ∈ {32, 128}
//! (detailed results for d = 10, as in the paper).

use semimatch_bench::singleproc::{bi_grid, singleproc_row};
use semimatch_bench::{emit_report, markdown_table, Options};

fn main() {
    let opts = Options::from_args();
    let mut report = format!(
        "# SINGLEPROC-UNIT — exact vs greedy heuristics\n\nscale = {}, instances = {}, seed = {}\n\nRatios are makespan / M_opt (median over instances); times are mean seconds.\n\n",
        opts.scale, opts.instances, opts.seed
    );
    for d in [2u32, 5, 10] {
        for g in [32u32, 128] {
            let grid = bi_grid(d, g);
            let rows: Vec<Vec<String>> = grid
                .iter()
                .map(|cfg| {
                    let r = singleproc_row(cfg, &opts);
                    let mut row = vec![r.name.clone(), r.opt.to_string()];
                    row.extend(r.ratios.iter().map(|x| format!("{x:.3}")));
                    row.push(format!("{:.4}", r.exact_time));
                    row.push(format!("{:.4}", r.times.iter().sum::<f64>()));
                    row
                })
                .collect();
            report.push_str(&format!("## d = {d}, g = {g}\n\n"));
            report.push_str(&markdown_table(
                &[
                    "Instance",
                    "M_opt",
                    "basic",
                    "sorted",
                    "double",
                    "expected",
                    "t_exact (s)",
                    "t_heur Σ (s)",
                ],
                &rows,
            ));
            report.push('\n');
        }
    }
    emit_report("singleproc_report.md", &report);
}
