//! Fast-exact frontier: warm-started capacity probes vs the cold
//! rebuild-per-probe ablation, plus the one-shot min-cost-flow backend.
//!
//! The workload is the tall (n ≫ p) unit sweep of the `fast-exact-tall`
//! bench group — loose counting bounds, so the load-range search really
//! probes. Three backends over the same instances:
//!
//! * `cost-scaling-cold` — the pre-warm-start bisection: every capacity
//!   probe rebuilds the capacitated network and recomputes the flow from
//!   zero (`cost_scaling_cold_in`).
//! * `cost-scaling-warm` — the shipped solver: one resident network per
//!   probe session, processor arcs retargeted in place and the flow
//!   repaired incrementally, plus instance partitioning
//!   (`cost_scaling_in`).
//! * `mcf` — one min-cost max-flow with convex unit-arc bundles; no
//!   probe loop at all (`mcf_in`).
//!
//! Everything runs under a **1-worker local pool**, which keeps the
//! multi-way parallel probes off: the cold/warm contrast isolates the
//! effect of warm-starting alone. Per backend the run records best-of-3
//! wall-clock seconds, the probe count (`oracle_calls`: capacity probes
//! for the search kinds, shortest-path augmentations for `mcf`) and the
//! flow-augmentation count metered off the resident workspace. The run
//! asserts all three land on identical makespans, then writes
//! `results/BENCH_fast_exact.md` and `results/BENCH_fast_exact.json`
//! (with `host_cores`, `threads` and the git revision, so numbers are
//! read in context, plus a `metrics` object holding the run's whole
//! telemetry registry — probe counts, session temperatures, span
//! histograms, pool stats). An existing JSON recorded on a host with a
//! different core count is only overwritten under `--force`.

use std::sync::Arc;
use std::time::Instant;

use semimatch_bench::{
    emit_report, guard_host_cores, indent_json, markdown_table, record_pool_stats, Options,
    RunStamp,
};
use semimatch_core::exact::{cost_scaling_cold_in, cost_scaling_in, mcf_in};
use semimatch_gen::rng::Xoshiro256;
use semimatch_gen::{fewg_manyg, hilo_permuted};
use semimatch_graph::Bipartite;
use semimatch_matching::SearchWorkspace;

/// Timing repeats per backend; the best run is reported (counters are
/// identical across repeats — the backends are deterministic).
const REPEATS: usize = 3;

/// The tall loose-bound unit sweep of the `fast-exact-tall` bench group:
/// g = 4, d = 2 skews eligibility toward few processors per group, so the
/// optimum sits well above the `⌈n/p⌉` counting bound and the load-range
/// search genuinely probes in both directions.
fn tall_sweep(count: u64, n: u32, p: u32) -> Vec<Bipartite> {
    let root = Xoshiro256::seed_from_u64(42);
    (0..count)
        .map(|i| {
            let mut rng = root.stream(i);
            if i % 2 == 0 {
                hilo_permuted(n, p, 4, 2, &mut rng)
            } else {
                fewg_manyg(n, p, 4, 2, &mut rng)
            }
        })
        .collect()
}

struct Row {
    backend: &'static str,
    seconds: f64,
    probes: u64,
    augmentations: u64,
    checksum: u64,
}

/// Times one backend over the whole sweep, best of [`REPEATS`]. A fresh
/// workspace per repeat keeps repeats independent; within a repeat the
/// workspace is shared across instances, exactly like a serving loop.
fn run_backend(
    backend: &'static str,
    tall: &[Bipartite],
    pool: &rayon::ThreadPool,
    solve: impl Fn(&Bipartite, &mut SearchWorkspace) -> (u64, u32) + Sync,
) -> Row {
    let mut best = f64::INFINITY;
    let mut probes = 0u64;
    let mut augmentations = 0u64;
    let mut checksum = 0u64;
    for _ in 0..REPEATS {
        let mut ws = SearchWorkspace::new();
        let start = Instant::now();
        let (sum, calls, augs) = pool.install(|| {
            let mut sum = 0u64;
            let mut calls = 0u64;
            let before = ws.flow_augmentations();
            for g in tall {
                let (makespan, oracle_calls) = solve(g, &mut ws);
                sum += makespan;
                calls += oracle_calls as u64;
            }
            (sum, calls, ws.flow_augmentations() - before)
        });
        best = best.min(start.elapsed().as_secs_f64());
        probes = calls;
        augmentations = augs;
        checksum = sum;
    }
    Row { backend, seconds: best, probes, augmentations, checksum }
}

fn main() {
    let opts = Options::from_args();
    let scale = opts.scale.max(1);
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    guard_host_cores("BENCH_fast_exact.json", host_cores, opts.force);
    // The timed sections all run under the 1-worker local pool below.
    let stamp = RunStamp::capture(1);
    // Telemetry for the whole run: solver counters accumulate across every
    // backend and repeat, and land as the report's `metrics` object.
    let collecting = Arc::new(semimatch_obs::Collecting::new());
    semimatch_obs::install(collecting.clone());
    // p = 32 keeps HiLo's p-divisible-by-g precondition (g = 16).
    let (n, p) = ((8192 / scale).max(64), 32);
    let count = opts.instances.max(2);
    let tall = tall_sweep(count, n, p);
    // One worker: in-solver parallel probes stay off, so the cold/warm
    // contrast measures warm-starting alone.
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().expect("local pool");

    let rows = [
        run_backend("cost-scaling-cold", &tall, &pool, |g, ws| {
            let r = cost_scaling_cold_in(g, ws).expect("generated instances are unit + covered");
            (r.makespan, r.oracle_calls)
        }),
        run_backend("cost-scaling-warm", &tall, &pool, |g, ws| {
            let r = cost_scaling_in(g, ws).expect("generated instances are unit + covered");
            (r.makespan, r.oracle_calls)
        }),
        run_backend("mcf", &tall, &pool, |g, ws| {
            let r = mcf_in(g, ws).expect("generated instances are unit + covered");
            (r.makespan, r.oracle_calls)
        }),
    ];
    for r in &rows[1..] {
        assert_eq!(r.checksum, rows[0].checksum, "{}: exact backends disagreed", r.backend);
    }
    record_pool_stats(&pool.stats());
    semimatch_obs::uninstall();
    let metrics = collecting.registry().render_json();
    let cold = &rows[0];
    let warm = &rows[1];
    let warm_speedup = cold.seconds / warm.seconds.max(f64::EPSILON);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.backend.to_string(),
                format!("{:.4}", r.seconds),
                r.probes.to_string(),
                r.augmentations.to_string(),
                format!("{:.2}×", cold.seconds / r.seconds.max(f64::EPSILON)),
            ]
        })
        .collect();
    let report = format!(
        "# Fast exact: warm-started probes and the min-cost-flow backend\n\n\
         Tall unit sweep (the `fast-exact-tall` instances): {count} instances, \
         n = {n}, p = {p}, seed = {}, best of {REPEATS} runs under a 1-worker \
         pool (in-solver parallel probes off — the contrast isolates \
         warm-starting), host cores = {host_cores}.\n\n\
         \"probes\" counts capacity probes for the load-range kinds and \
         shortest-path augmentations for `mcf`; \"augmentations\" meters the \
         resident flow network. All backends returned identical makespans \
         (Σ = {}).\n\n{}\n\
         Warm-started probing is {warm_speedup:.2}× over the cold \
         rebuild-per-probe ablation on the same search.\n\n\
         Score-identity of every exact kind — including `mcf` on weighted \
         total-load instances — is enforced by `tests/exact_agreement.rs`; \
         thread-count determinism by `tests/parallel_determinism.rs`.\n",
        opts.seed,
        cold.checksum,
        markdown_table(
            &["backend", "seconds", "probes", "augmentations", "speedup vs cold"],
            &table
        ),
    );
    emit_report("BENCH_fast_exact.md", &report);

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"meta\": {{\"scale\": {scale}, \"instances\": {count}, \"n\": {n}, \"p\": {p}, \
         \"seed\": {}, {}, \"repeats\": {REPEATS}, \
         \"pool_threads\": 1, \"warm_speedup_vs_cold\": {warm_speedup:.4}}},\n  \"rows\": [\n",
        opts.seed,
        stamp.json_fields()
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"seconds\": {:.6}, \"probes\": {}, \
             \"augmentations\": {}, \"makespan_sum\": {}}}{}\n",
            r.backend,
            r.seconds,
            r.probes,
            r.augmentations,
            r.checksum,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    // Whole-run telemetry (all backends × repeats): solver counters,
    // probe-session temperatures, span histograms and pool stats.
    json.push_str(&format!("  \"metrics\": {}\n", indent_json(&metrics, "  ")));
    json.push_str("}\n");
    emit_report("BENCH_fast_exact.json", &json);
}
