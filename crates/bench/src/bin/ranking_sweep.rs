//! Reproduces the §V-C robustness claim: "the ranking of the heuristics …
//! were always the same … for the two families of random hypergraphs with
//! other combinations of dv, dh ∈ {2, 5, 10}".
//!
//! Sweeps all nine (dv, dh) combinations for both weight schemes on a
//! scaled grid and reports the average-quality ranking per combination.

use semimatch_bench::{emit_report, footer, markdown_table, quality_row, Options};
use semimatch_core::solver::SolverKind;
use semimatch_gen::params::{Config, Family, SIZE_GRID};
use semimatch_gen::weights::WeightScheme;

fn ranking(avg: &[f64]) -> Vec<&'static str> {
    let mut idx: Vec<usize> = (0..avg.len()).collect();
    idx.sort_by(|&a, &b| avg[a].total_cmp(&avg[b]));
    idx.into_iter().map(|i| SolverKind::HYPER_HEURISTICS[i].label()).collect()
}

fn main() {
    let mut opts = Options::from_args();
    // The sweep multiplies the grid ninefold; default to a scaled run so
    // it finishes promptly (override with --scale 1 for the full sweep).
    if opts.scale == 1 {
        opts.scale = 8;
        eprintln!("note: ranking_sweep defaults to --scale 8; pass --scale explicitly to override");
    }
    let mut report = format!(
        "# §V-C ranking stability over dv, dh ∈ {{2,5,10}}\n\nscale = {}, instances = {}, seed = {}\n\n",
        opts.scale, opts.instances, opts.seed
    );
    for weights in [WeightScheme::Unit, WeightScheme::Related] {
        let mut rows = Vec::new();
        for dv in [2u32, 5, 10] {
            for dh in [2u32, 5, 10] {
                let grid: Vec<Config> = [Family::Fg, Family::Mg, Family::Hlf, Family::Hlm]
                    .into_iter()
                    .flat_map(|family| {
                        SIZE_GRID.iter().map(move |&(n, p)| Config {
                            family,
                            n,
                            p,
                            dv,
                            dh,
                            weights,
                        })
                    })
                    .collect();
                // Average quality over the FewgManyg halves only (the HiLo
                // families tie under unit weights, carrying no ranking
                // signal — as in Table II).
                let fm_rows: Vec<_> = grid
                    .iter()
                    .filter(|c| matches!(c.family, Family::Fg | Family::Mg))
                    .map(|c| quality_row(c, &opts))
                    .collect();
                let (avg_q, _, _) = footer(&fm_rows);
                let rank = ranking(&avg_q);
                rows.push(vec![
                    format!("dv={dv}, dh={dh}"),
                    rank.join(" < "),
                    avg_q.iter().map(|x| format!("{x:.3}")).collect::<Vec<_>>().join(" / "),
                ]);
            }
        }
        report.push_str(&format!("## {weights:?} weights (FewgManyg families)\n\n"));
        report.push_str(&markdown_table(
            &["Combination", "Ranking (best → worst)", "Avg quality SGH/VGH/EGH/EVG"],
            &rows,
        ));
        report.push('\n');
    }
    emit_report("ranking_sweep.md", &report);
}
