//! Regenerates **Table III**: quality and running time under the
//! **related** weights `w_h = ⌈s_min·s_max / s_h⌉`.

use semimatch_bench::{run_quality_table, Options};
use semimatch_gen::params::table1_grid;
use semimatch_gen::weights::WeightScheme;

fn main() {
    let opts = Options::from_args();
    run_quality_table(
        "Table III — related weights (MULTIPROC)",
        "table3.md",
        &table1_grid(WeightScheme::Related),
        &opts,
    );
}
