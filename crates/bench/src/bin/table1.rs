//! Regenerates **Table I**: random hypergraph instance statistics
//! (`|V1|`, `|V2|`, median `|N|`, median `Σ_h |h ∩ V2|`).

use semimatch_bench::{emit_report, markdown_table, stats_row, Options};
use semimatch_gen::params::table1_grid;
use semimatch_gen::weights::WeightScheme;

fn main() {
    let opts = Options::from_args();
    let grid = table1_grid(WeightScheme::Unit);
    let rows: Vec<Vec<String>> = grid
        .iter()
        .map(|cfg| {
            let s = stats_row(cfg, &opts);
            vec![
                s.name,
                s.n_tasks.to_string(),
                s.n_procs.to_string(),
                s.n_hedges.to_string(),
                s.pins.to_string(),
            ]
        })
        .collect();
    let mut report = String::from("# Table I — random hypergraph instances\n\n");
    report.push_str(&format!(
        "scale = {}, instances = {}, seed = {}\n\n",
        opts.scale, opts.instances, opts.seed
    ));
    report.push_str(&markdown_table(&["Instance", "|V1|", "|V2|", "|N|", "Σ|h∩V2|"], &rows));
    emit_report("table1.md", &report);
}
