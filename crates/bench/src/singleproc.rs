//! `SINGLEPROC-UNIT` experiment harness (§V-B and the technical-report
//! tables): exact optimum vs the four greedy heuristics on HiLo and
//! FewgManyg bipartite instances.

use std::time::Instant;

use rayon::prelude::*;
use semimatch_core::quality::{mean_f64, median_f64, median_u64, ratio};
use semimatch_core::solver::{Problem, Solver, SolverKind};
use semimatch_gen::rng::Xoshiro256;
use semimatch_gen::{fewg_manyg, hilo_permuted};

use crate::{solver_set, Options};

/// Bipartite generator family for `SINGLEPROC` experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BiFamily {
    /// FewgManyg(n, p, g, d).
    FewgManyg,
    /// HiLo(n, p, g, d) with random relabeling per instance.
    HiLo,
}

impl BiFamily {
    /// Short prefix used in row names.
    pub fn prefix(self) -> &'static str {
        match self {
            BiFamily::FewgManyg => "FM",
            BiFamily::HiLo => "HL",
        }
    }
}

/// One `SINGLEPROC-UNIT` experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct BiConfig {
    /// Generator family.
    pub family: BiFamily,
    /// Tasks.
    pub n: u32,
    /// Processors.
    pub p: u32,
    /// Groups.
    pub g: u32,
    /// Degree parameter.
    pub d: u32,
}

impl BiConfig {
    /// Row name, e.g. `FM-20-4-g32-d10`.
    pub fn name(&self) -> String {
        format!(
            "{}-{}-{}-g{}-d{}",
            self.family.prefix(),
            self.n / 256,
            self.p / 256,
            self.g,
            self.d
        )
    }

    /// Generates the `index`-th instance.
    pub fn instance(&self, master_seed: u64, index: u64) -> semimatch_graph::Bipartite {
        let tag = (self.n as u64) << 32
            ^ (self.p as u64) << 16
            ^ (self.g as u64) << 8
            ^ self.d as u64
            ^ match self.family {
                BiFamily::FewgManyg => 0x55,
                BiFamily::HiLo => 0xAA,
            };
        let root = Xoshiro256::seed_from_u64(master_seed ^ tag.wrapping_mul(0x9E3779B97F4A7C15));
        let mut rng = root.stream(index);
        match self.family {
            BiFamily::FewgManyg => fewg_manyg(self.n, self.p, self.g, self.d, &mut rng),
            BiFamily::HiLo => hilo_permuted(self.n, self.p, self.g, self.d, &mut rng),
        }
    }
}

/// One row of the §V-B report.
#[derive(Clone, Debug)]
pub struct SingleProcRow {
    /// Row name.
    pub name: String,
    /// Median optimal makespan.
    pub opt: u64,
    /// Median `makespan / M_opt` per heuristic
    /// ([`SolverKind::BI_HEURISTICS`] order).
    pub ratios: Vec<f64>,
    /// Mean heuristic seconds ([`SolverKind::BI_HEURISTICS`] order).
    pub times: Vec<f64>,
    /// Mean exact-algorithm seconds.
    pub exact_time: f64,
}

/// Runs exact + heuristics over the instances of `cfg`, dispatching through
/// the [`Solver`] trait. Each rayon worker holds one exact solver (whose
/// flow arena stays warm across its instances — the dominant win) plus one
/// solver per heuristic.
pub fn singleproc_row(cfg: &BiConfig, opts: &Options) -> SingleProcRow {
    let cfg = scale_bi(*cfg, opts.scale);
    let per_instance: Vec<(u64, Vec<f64>, Vec<f64>, f64)> = (0..opts.instances)
        .into_par_iter()
        .map_init(
            || (SolverKind::ExactBisection.solver(), solver_set(&SolverKind::BI_HEURISTICS)),
            |(exact_solver, heuristics), i| {
                let g = cfg.instance(opts.seed, i);
                let problem = Problem::SingleProc(&g);
                let t0 = Instant::now();
                let exact = exact_solver.solve(problem).expect("generator degrees are clamped ≥ 1");
                let exact_time = t0.elapsed().as_secs_f64();
                let opt = exact.makespan(&problem).expect("solution matches problem class");
                let mut ratios = Vec::with_capacity(heuristics.len());
                let mut times = Vec::with_capacity(heuristics.len());
                for solver in heuristics.iter_mut() {
                    let t1 = Instant::now();
                    let sol = solver.solve(problem).expect("covered");
                    times.push(t1.elapsed().as_secs_f64());
                    ratios.push(ratio(
                        sol.makespan(&problem).expect("solution matches problem class"),
                        opt,
                    ));
                }
                (opt, ratios, times, exact_time)
            },
        )
        .collect();
    let mut opt: Vec<u64> = per_instance.iter().map(|x| x.0).collect();
    let k = SolverKind::BI_HEURISTICS.len();
    let ratios = (0..k)
        .map(|j| {
            let mut xs: Vec<f64> = per_instance.iter().map(|x| x.1[j]).collect();
            median_f64(&mut xs)
        })
        .collect();
    let times = (0..k)
        .map(|j| mean_f64(&per_instance.iter().map(|x| x.2[j]).collect::<Vec<_>>()))
        .collect();
    let exact_time = mean_f64(&per_instance.iter().map(|x| x.3).collect::<Vec<_>>());
    let name = if opts.scale == 1 {
        cfg.name()
    } else {
        format!("{}-n{}-p{}-g{}-d{}", cfg.family.prefix(), cfg.n, cfg.p, cfg.g, cfg.d)
    };
    SingleProcRow { name, opt: median_u64(&mut opt), ratios, times, exact_time }
}

fn scale_bi(mut c: BiConfig, scale: u32) -> BiConfig {
    if scale > 1 {
        c.n = (c.n / scale).max(c.g);
        c.p = ((c.p / scale).max(c.g) / c.g).max(1) * c.g;
    }
    c
}

/// The §V-A size grid restricted to `n ≥ 5p` (same as MULTIPROC).
pub fn bi_grid(d: u32, g: u32) -> Vec<BiConfig> {
    semimatch_gen::SIZE_GRID
        .iter()
        .flat_map(|&(n, p)| {
            [BiFamily::FewgManyg, BiFamily::HiLo].into_iter().map(move |family| BiConfig {
                family,
                n,
                p,
                g,
                d,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_is_sane_on_tiny_instances() {
        let cfg = BiConfig { family: BiFamily::FewgManyg, n: 128, p: 32, g: 4, d: 3 };
        let opts = Options { scale: 1, instances: 3, seed: 11, ..Options::default() };
        let row = singleproc_row(&cfg, &opts);
        assert!(row.opt >= 128_u64.div_ceil(32), "opt at least ⌈n/p⌉");
        assert_eq!(row.ratios.len(), 4);
        for &r in &row.ratios {
            assert!(r >= 1.0 - 1e-9, "heuristics cannot beat the optimum: {r}");
        }
    }

    #[test]
    fn hilo_rows_work_too() {
        let cfg = BiConfig { family: BiFamily::HiLo, n: 64, p: 16, g: 4, d: 2 };
        let opts = Options { scale: 1, instances: 2, seed: 3, ..Options::default() };
        let row = singleproc_row(&cfg, &opts);
        assert!(row.opt >= 4);
    }

    #[test]
    fn grid_covers_both_families() {
        let grid = bi_grid(10, 32);
        assert_eq!(grid.len(), 12);
        assert!(grid.iter().any(|c| c.family == BiFamily::HiLo));
        assert!(grid.iter().any(|c| c.family == BiFamily::FewgManyg));
    }
}
