//! # semimatch-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper (see DESIGN.md §5 for the experiment index). Binaries:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I (instance statistics) |
//! | `table2` | Table II (unweighted quality/time) |
//! | `table3` | Table III (related weights) |
//! | `table8_random` | TR Table 8 (random weights) |
//! | `singleproc_report` | §V-B / TR tables (SINGLEPROC-UNIT) |
//! | `figures` | Figs. 1–5 worst-case behaviour |
//! | `ranking_sweep` | §V-C ranking-stability claim |
//!
//! All binaries accept `--scale K` (divide n and p by K), `--instances M`
//! (instances per configuration, default 10), `--seed S` (master seed,
//! default 42) and `--threads T` (work-stealing pool size; 0 = all
//! cores), and write a markdown report to `results/`.
//!
//! The harness follows the paper's protocol: median over the instances for
//! quality columns, mean wall-clock seconds for time rows. Instances fan
//! out across rayon's work-stealing pool, and the large exact backends
//! (hk-semi phase extraction, cost-scaling capacity probes) additionally
//! parallelize *inside* a solve — so per-solver wall-clock columns are
//! measured under whatever pool the harness pinned.

pub mod singleproc;

use std::time::Instant;

use rayon::prelude::*;
use semimatch_core::lower_bound::{lower_bound_flowtime_multiproc, lower_bound_multiproc};
use semimatch_core::objective::Objective;
use semimatch_core::quality::{mean_f64, median_f64, median_u64, ratio, score_ratio};
use semimatch_core::solver::{KindSolver, Problem, Solver, SolverKind};
use semimatch_gen::params::Config;
use semimatch_graph::HypergraphStats;

/// Command-line options shared by all experiment binaries.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Divide the paper's n and p by this factor (1 = full size).
    pub scale: u32,
    /// Instances per configuration (the paper uses 10).
    pub instances: u64,
    /// Master seed.
    pub seed: u64,
    /// Global pool size (`0` = automatic: `RAYON_NUM_THREADS`, else all
    /// cores).
    pub threads: usize,
    /// Overwrite a results JSON recorded on a different host
    /// (see [`guard_host_cores`]).
    pub force: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options { scale: 1, instances: 10, seed: 42, threads: 0, force: false }
    }
}

impl Options {
    /// Parses `--scale K --instances M --seed S --threads T [--force]`
    /// from `std::env::args` and pins the global pool to the requested
    /// size. Unknown flags abort with a usage message.
    pub fn from_args() -> Options {
        let mut opts = Options::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if flag == "--force" {
                opts.force = true;
                i += 1;
                continue;
            }
            let value = args.get(i + 1).unwrap_or_else(|| usage(flag));
            match flag {
                "--scale" => opts.scale = value.parse().unwrap_or_else(|_| usage(flag)),
                "--instances" => opts.instances = value.parse().unwrap_or_else(|_| usage(flag)),
                "--seed" => opts.seed = value.parse().unwrap_or_else(|_| usage(flag)),
                "--threads" => opts.threads = value.parse().unwrap_or_else(|_| usage(flag)),
                _ => usage(flag),
            }
            i += 2;
        }
        if let Err(e) = rayon::ThreadPoolBuilder::new().num_threads(opts.threads).build_global() {
            // Fires only when something already initialized the pool; the
            // run proceeds on the existing one.
            eprintln!("warning: --threads ignored: {e}");
        }
        opts
    }
}

fn usage(flag: &str) -> ! {
    eprintln!(
        "unknown or malformed flag {flag}; \
         expected --scale K --instances M --seed S --threads T [--force]"
    );
    std::process::exit(2)
}

/// Host and build provenance stamped into every machine-readable report:
/// core count, resolved pool width, and the source revision
/// (`git describe --always --dirty`, `"unknown"` outside a checkout).
#[derive(Clone, Debug)]
pub struct RunStamp {
    pub host_cores: usize,
    pub threads: usize,
    pub git: String,
}

impl RunStamp {
    /// Captures the stamp for the current process. `threads` should be
    /// the pool width the timed sections actually ran under.
    pub fn capture(threads: usize) -> RunStamp {
        let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let git = std::process::Command::new("git")
            .args(["describe", "--always", "--dirty"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        RunStamp { host_cores, threads, git }
    }

    /// The stamp as JSON object fields (no surrounding braces), ready to
    /// splice into a `"meta"` object.
    pub fn json_fields(&self) -> String {
        format!(
            "\"host_cores\": {}, \"threads\": {}, \"git\": \"{}\"",
            self.host_cores,
            self.threads,
            self.git.replace('\\', "\\\\").replace('"', "\\\"")
        )
    }
}

/// Timing rows from different hosts are not comparable, and the results
/// JSONs are checked in as trajectory records — refuse to clobber one
/// recorded with a different `host_cores` unless the caller passed
/// `--force`. Call this *before* the expensive run, so a refusal costs
/// nothing.
pub fn guard_host_cores(filename: &str, host_cores: usize, force: bool) {
    let path = std::path::Path::new("results").join(filename);
    let Ok(existing) = std::fs::read_to_string(&path) else {
        return; // nothing to overwrite
    };
    let recorded: Option<usize> = existing.split("\"host_cores\":").nth(1).and_then(|rest| {
        rest.trim_start().split(|c: char| !c.is_ascii_digit()).next()?.parse().ok()
    });
    match recorded {
        Some(prev) if prev != host_cores && !force => {
            eprintln!(
                "error: {} was recorded with host_cores = {prev}, this host has {host_cores}; \
                 timings are not comparable across hosts. Pass --force to overwrite.",
                path.display()
            );
            std::process::exit(2);
        }
        _ => {}
    }
}

/// Re-indents a rendered JSON document (e.g. the `obs` registry dump) so
/// it nests as an object value inside a hand-built report at the given
/// indent depth. The first line is left alone — it lands after a
/// `"metrics": ` key.
pub fn indent_json(doc: &str, indent: &str) -> String {
    let mut out = String::with_capacity(doc.len());
    for (i, line) in doc.lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(indent);
        }
        out.push_str(line);
    }
    out
}

/// Folds a pool's work-stealing statistics into the installed telemetry
/// registry (no-op when no recorder is installed). Counters are additive,
/// so calling this once per local pool accumulates fleet totals.
pub fn record_pool_stats(stats: &rayon::PoolStats) {
    if !semimatch_obs::enabled() {
        return;
    }
    semimatch_obs::gauge_set("pool.threads", stats.threads() as i64);
    semimatch_obs::counter_add("pool.tasks_executed", stats.tasks_executed());
    semimatch_obs::counter_add("pool.steals", stats.steals());
    semimatch_obs::counter_add("pool.injector_pops", stats.injector_pops());
    semimatch_obs::counter_add("pool.sleeps", stats.sleeps());
    semimatch_obs::counter_add("pool.wakes", stats.wakes);
}

/// Scales a configuration down by `Options::scale`, preserving the n/p
/// ratio and group divisibility.
pub fn scale_config(mut c: Config, scale: u32) -> Config {
    if scale > 1 {
        let g = c.family.groups();
        c.n = (c.n / scale).max(g);
        c.p = ((c.p / scale).max(g) / g).max(1) * g;
    }
    c
}

/// Row label: the Table I name at full scale, explicit sizes otherwise
/// (the `n/256` convention would collide after scaling).
pub fn row_name(cfg: &Config, scale: u32) -> String {
    if scale == 1 {
        cfg.name()
    } else {
        format!("{}-n{}-p{}-MP{}", cfg.family.prefix(), cfg.n, cfg.p, cfg.weights.suffix())
    }
}

/// One row of Table II/III/TR-8: medians over instances.
#[derive(Clone, Debug)]
pub struct QualityRow {
    /// Instance name, e.g. `FG-20-4-MP-W`.
    pub name: String,
    /// Median lower bound LB (Eq. 1).
    pub lb: u64,
    /// Median `makespan / LB` per heuristic, in
    /// [`SolverKind::HYPER_HEURISTICS`] order.
    pub ratios: Vec<f64>,
    /// Median `flowtime / FLB` per heuristic (the flow-time gap against
    /// the balanced-spread flow-time lower bound), same order. The
    /// heuristics still optimize the makespan here — this column records
    /// how far the makespan-directed solutions drift on the second
    /// objective.
    pub flow_ratios: Vec<f64>,
    /// Mean wall-clock seconds per heuristic.
    pub times: Vec<f64>,
}

/// One workspace-backed solver per sweep kind — built once per rayon
/// worker and reused across that worker's share of the instances, instead
/// of allocating engine scratch per instance.
pub fn solver_set(kinds: &[SolverKind]) -> Vec<KindSolver> {
    kinds.iter().map(|&k| k.solver()).collect()
}

/// Per-instance sweep sample: `(LB, makespan ratios, flow ratios, times)`.
type InstanceSample = (u64, Vec<f64>, Vec<f64>, Vec<f64>);

/// Runs the four `MULTIPROC` heuristics on every instance of `cfg`,
/// dispatching through the [`Solver`] trait with per-worker solver sets.
pub fn quality_row(cfg: &Config, opts: &Options) -> QualityRow {
    let cfg = scale_config(*cfg, opts.scale);
    let per_instance: Vec<InstanceSample> = (0..opts.instances)
        .into_par_iter()
        .map_init(
            || solver_set(&SolverKind::HYPER_HEURISTICS),
            |solvers, i| {
                let h = cfg.instance(opts.seed, i);
                let problem = Problem::MultiProc(&h);
                let lb = lower_bound_multiproc(&h).expect("generated instances are covered");
                let flb = lower_bound_flowtime_multiproc(&h).expect("covered");
                let mut ratios = Vec::with_capacity(solvers.len());
                let mut flow_ratios = Vec::with_capacity(solvers.len());
                let mut times = Vec::with_capacity(solvers.len());
                for solver in solvers.iter_mut() {
                    let start = Instant::now();
                    let sol = solver.solve(problem).expect("generated instances are covered");
                    times.push(start.elapsed().as_secs_f64());
                    ratios.push(ratio(sol.makespan(&problem).expect("class matches"), lb));
                    flow_ratios.push(score_ratio(
                        sol.score(&problem, Objective::FlowTime).expect("class matches"),
                        flb,
                    ));
                }
                (lb, ratios, flow_ratios, times)
            },
        )
        .collect();
    aggregate(row_name(&cfg, opts.scale), per_instance)
}

fn aggregate(name: String, per_instance: Vec<InstanceSample>) -> QualityRow {
    let k = per_instance.first().map_or(0, |(_, r, _, _)| r.len());
    let mut lbs: Vec<u64> = per_instance.iter().map(|&(lb, _, _, _)| lb).collect();
    let column_median = |pick: fn(&InstanceSample) -> &Vec<f64>| {
        (0..k)
            .map(|j| {
                let mut xs: Vec<f64> = per_instance.iter().map(|x| pick(x)[j]).collect();
                median_f64(&mut xs)
            })
            .collect::<Vec<f64>>()
    };
    let ratios = column_median(|x| &x.1);
    let flow_ratios = column_median(|x| &x.2);
    let times = (0..k)
        .map(|j| {
            let xs: Vec<f64> = per_instance.iter().map(|(_, _, _, t)| t[j]).collect();
            mean_f64(&xs)
        })
        .collect();
    QualityRow { name, lb: median_u64(&mut lbs), ratios, flow_ratios, times }
}

/// One row of Table I: structural medians over instances.
#[derive(Clone, Debug)]
pub struct StatsRow {
    /// Instance name.
    pub name: String,
    /// `|V1|`, `|V2|` (identical across instances).
    pub n_tasks: u32,
    /// Number of processors.
    pub n_procs: u32,
    /// Median `|N|`.
    pub n_hedges: u64,
    /// Median `Σ_h |h ∩ V2|`.
    pub pins: u64,
}

/// Generates the instances of `cfg` and reports Table I columns.
pub fn stats_row(cfg: &Config, opts: &Options) -> StatsRow {
    let cfg = scale_config(*cfg, opts.scale);
    let collected: Vec<(u64, u64)> = (0..opts.instances)
        .into_par_iter()
        .map(|i| {
            let h = cfg.instance(opts.seed, i);
            let s = HypergraphStats::of(&h);
            (s.n_hedges as u64, s.total_pins as u64)
        })
        .collect();
    let mut hedges: Vec<u64> = collected.iter().map(|&(h, _)| h).collect();
    let mut pins: Vec<u64> = collected.iter().map(|&(_, p)| p).collect();
    StatsRow {
        name: row_name(&cfg, opts.scale),
        n_tasks: cfg.n,
        n_procs: cfg.p,
        n_hedges: median_u64(&mut hedges),
        pins: median_u64(&mut pins),
    }
}

/// Renders a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in headers {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Writes `content` under `results/` (created on demand) and echoes it to
/// stdout.
pub fn emit_report(filename: &str, content: &str) {
    // Tolerate a closed pipe (`table2 … | head` must not panic on EPIPE);
    // any other stdout failure is reported but does not abort the report
    // file write below.
    {
        use std::io::Write;
        let echo = || -> std::io::Result<()> {
            let mut out = std::io::stdout();
            out.write_all(content.as_bytes())?;
            out.write_all(b"\n")
        };
        if let Err(e) = echo() {
            if e.kind() != std::io::ErrorKind::BrokenPipe {
                eprintln!("warning: could not echo report to stdout: {e}");
            }
        }
    }
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(filename);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Shared driver for Tables II, III and TR-8 (they differ only in the
/// weight scheme): runs the grid, formats the FewgManyg and HiLo halves
/// with their footers, and emits the report.
pub fn run_quality_table(title: &str, filename: &str, grid: &[Config], opts: &Options) {
    let (fm, hl): (Vec<_>, Vec<_>) = grid.iter().partition(|c| {
        matches!(c.family, semimatch_gen::params::Family::Fg | semimatch_gen::params::Family::Mg)
    });
    let mut report = format!(
        "# {title}\n\nscale = {}, instances = {}, seed = {}\n\n",
        opts.scale, opts.instances, opts.seed
    );
    for (label, configs) in [("FewgManyg", fm), ("HiLo", hl)] {
        let rows: Vec<QualityRow> = configs.iter().map(|c| quality_row(c, opts)).collect();
        let mut table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let mut row = vec![r.name.clone(), r.lb.to_string()];
                row.extend(r.ratios.iter().map(|x| format!("{x:.2}")));
                row.extend(r.flow_ratios.iter().map(|x| format!("{x:.2}")));
                row
            })
            .collect();
        let (avg_q, avg_f, avg_t) = footer(&rows);
        let mut qrow = vec!["Average quality".to_string(), String::new()];
        qrow.extend(avg_q.iter().map(|x| format!("{x:.2}")));
        qrow.extend(avg_f.iter().map(|x| format!("{x:.2}")));
        table.push(qrow);
        let mut trow = vec!["Average time (s)".to_string(), String::new()];
        trow.extend(avg_t.iter().map(|x| format!("{x:.3}")));
        trow.extend(SolverKind::HYPER_HEURISTICS.iter().map(|_| String::new()));
        table.push(trow);
        // Makespan-gap columns first (the paper's Tables II/III), then the
        // flow-time gap of the same solutions against the flow-time bound.
        let mut headers = vec!["Instance", "LB"];
        headers.extend(SolverKind::HYPER_HEURISTICS.iter().map(|k| k.label()));
        let flow_headers: Vec<String> =
            SolverKind::HYPER_HEURISTICS.iter().map(|k| format!("{} f/FLB", k.label())).collect();
        headers.extend(flow_headers.iter().map(|s| s.as_str()));
        report.push_str(&format!("## {label}\n\n"));
        report.push_str(&markdown_table(&headers, &table));
        report.push('\n');
    }
    emit_report(filename, &report);
}

/// Column-wise averages of the quality rows (the paper's "Average quality"
/// and "Average time" footer lines, plus the flow-time gap averages).
pub fn footer(rows: &[QualityRow]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let k = rows.first().map_or(0, |r| r.ratios.len());
    let avg_quality =
        (0..k).map(|j| mean_f64(&rows.iter().map(|r| r.ratios[j]).collect::<Vec<_>>())).collect();
    let avg_flow = (0..k)
        .map(|j| mean_f64(&rows.iter().map(|r| r.flow_ratios[j]).collect::<Vec<_>>()))
        .collect();
    let avg_time =
        (0..k).map(|j| mean_f64(&rows.iter().map(|r| r.times[j]).collect::<Vec<_>>())).collect();
    (avg_quality, avg_flow, avg_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semimatch_gen::params::Family;
    use semimatch_gen::weights::WeightScheme;

    fn tiny_cfg() -> Config {
        Config { family: Family::Fg, n: 160, p: 32, dv: 3, dh: 4, weights: WeightScheme::Related }
    }

    #[test]
    fn quality_row_is_deterministic_and_sane() {
        let opts = Options { scale: 1, instances: 3, seed: 7, ..Options::default() };
        let a = quality_row(&tiny_cfg(), &opts);
        let b = quality_row(&tiny_cfg(), &opts);
        assert_eq!(a.lb, b.lb);
        assert_eq!(a.ratios, b.ratios);
        assert_eq!(a.ratios.len(), 4);
        assert_eq!(a.flow_ratios.len(), 4);
        for &r in &a.ratios {
            assert!(r >= 1.0 - 1e-9, "heuristics cannot beat the lower bound: {r}");
            assert!(r < 50.0, "ratio {r} is implausible");
        }
        for &f in &a.flow_ratios {
            assert!(f >= 1.0 - 1e-9, "flow gap cannot beat the flow-time bound: {f}");
            assert!(f.is_finite(), "flow gap must be finite on covered instances");
        }
    }

    #[test]
    fn stats_row_matches_config() {
        let opts = Options { scale: 1, instances: 3, seed: 7, ..Options::default() };
        let s = stats_row(&tiny_cfg(), &opts);
        assert_eq!(s.n_tasks, 160);
        assert_eq!(s.n_procs, 32);
        assert!(s.n_hedges >= 160, "every task has ≥ 1 configuration");
        assert!(s.pins >= s.n_hedges);
    }

    #[test]
    fn scaling_preserves_divisibility() {
        let scaled = scale_config(tiny_cfg(), 4);
        assert_eq!(scaled.p % scaled.family.groups(), 0);
    }

    #[test]
    fn markdown_shape() {
        let table = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("| a |"));
        assert!(lines[2].contains("| 1 |"));
    }

    #[test]
    fn footer_averages() {
        let rows = vec![
            QualityRow {
                name: "x".into(),
                lb: 1,
                ratios: vec![1.0, 2.0],
                flow_ratios: vec![2.0, 4.0],
                times: vec![0.1, 0.2],
            },
            QualityRow {
                name: "y".into(),
                lb: 1,
                ratios: vec![3.0, 4.0],
                flow_ratios: vec![4.0, 6.0],
                times: vec![0.3, 0.4],
            },
        ];
        let (q, f, t) = footer(&rows);
        assert_eq!(q, vec![2.0, 3.0]);
        assert_eq!(f, vec![3.0, 5.0]);
        assert!((t[0] - 0.2).abs() < 1e-12 && (t[1] - 0.3).abs() < 1e-12);
    }
}
